// Fault injection for the serving and runtime layers.
//
// The engine's contracts (service/engine.hpp) are strongest exactly where
// faults hit: payload bytes must not depend on cache state, batch
// composition or schedule, and every accepted request is answered exactly
// once.  A FaultPlan stresses those contracts through the existing
// configuration hooks — no test-only code paths in src/service/:
//
//  * queue-full bursts      — a tiny queue_capacity plus an admission
//                             burst against the un-started engine (the
//                             deterministic probe) forces kQueueFull;
//  * cache evictions        — a 2-3 entry SolverCache (or cache off)
//                             churns the LRU on every cycle;
//  * schedule perturbation  — ShuffledScheduler executes each region's
//                             chunks in a seeded random order, the
//                             adversarial-but-legal schedule the runtime
//                             determinism contract (runtime/scheduler.hpp
//                             rule 2) must survive;
//  * oracle degradation     — run_reduction requests already route
//                             through seeded λ-oracles; the differential
//                             layer (oracles.hpp) degrades them directly
//                             via mis/degraded_oracle.
//
// run_fault_plan serves a trace under the plan and differentially checks
// every response against a direct solver call on a clean scheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "service/workload.hpp"
#include "util/rng.hpp"

namespace pslocal::qc {

/// A Scheduler that runs every chunk exactly once on the calling thread,
/// in a seeded shuffled order.  Legal under the runtime contract (chunk
/// boundaries are unchanged; execution order is unspecified), so any
/// result difference it provokes is a real determinism bug.  Not
/// thread-safe: one thread may drive regions at a time (nested regions
/// from inside a chunk body are fine).
class ShuffledScheduler final : public runtime::Scheduler {
 public:
  explicit ShuffledScheduler(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::size_t thread_count() const override { return 1; }

  void run_chunks(std::size_t n, std::size_t grain,
                  const std::function<void(runtime::ChunkRange)>& body)
      override;

  /// Regions executed so far (each draws a fresh permutation).
  [[nodiscard]] std::uint64_t regions() const { return regions_; }

 private:
  Rng rng_;
  std::uint64_t regions_ = 0;
};

/// One seeded fault-injection scenario over a service trace.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::size_t queue_capacity = 4;   // tiny: admission control under stress
  std::size_t burst = 12;           // submissions probed before start()
  std::size_t cache_entries = 2;    // tiny LRU: eviction churn
  std::size_t graph_cache_entries = 1;
  bool disable_cache = false;       // every lookup misses instead
  bool shuffle_scheduler = true;    // perturb chunk execution order
};

/// Draw a random plan (all knobs jittered, seed from rng).
[[nodiscard]] FaultPlan arbitrary_fault_plan(Rng& rng);

/// Outcome of serving a trace under a plan.  `error` is empty when every
/// injected fault was absorbed without breaking a contract.
struct FaultReport {
  std::size_t probe_rejected_full = 0;  // kQueueFull during the burst
  std::size_t retries = 0;              // kQueueFull after start()
  std::size_t served = 0;               // kOk responses received
  std::uint64_t cache_evictions = 0;
  bool cache_untouched_on_reject = false;  // satellite: kQueueFull is pure
  std::size_t mismatches = 0;           // payload != direct solver call
  std::uint64_t first_mismatch_id = 0;
  std::string error;                    // first broken contract, or empty

  [[nodiscard]] bool ok() const { return error.empty() && mismatches == 0; }
};

/// Serve `trace` under `plan` and differentially verify every response.
/// Deterministic in (plan, trace): the admission probe happens before the
/// dispatcher starts, and payload bytes never depend on timing.
[[nodiscard]] FaultReport run_fault_plan(const FaultPlan& plan,
                                         const service::Trace& trace);

}  // namespace pslocal::qc
