#include "qc/gen.hpp"

#include <algorithm>
#include <sstream>

#include "coloring/cf_baselines.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "util/check.hpp"

namespace pslocal::qc {

namespace {

/// The repeating 1,2,3 pattern colors every closed neighborhood
/// {v-1, v, v+1} rainbow on paths, and on rings whose length is a
/// multiple of 3.
CfColoring mod3_pattern(std::size_t n) {
  CfColoring f(n);
  for (std::size_t v = 0; v < n; ++v) f[v] = v % 3 + 1;
  return f;
}

HyperInstance planted_family(const std::string& family, std::uint64_t seed,
                             std::size_t n, std::size_t m, std::size_t k,
                             double epsilon) {
  Rng rng(seed);
  PlantedCfParams params;
  params.n = n;
  params.m = m;
  params.k = k;
  params.epsilon = epsilon;
  auto inst = planted_cf_colorable(params, rng);
  HyperInstance out;
  out.family = family;
  out.seed = seed;
  out.hypergraph = std::move(inst.hypergraph);
  out.k = inst.k;
  out.witness = inst.planted_coloring;
  return out;
}

/// Does some vertex of `edge` carry a color unique within the edge?
/// (The raw-state form of is_edge_happy, usable mid-generation before a
/// Hypergraph is materialized.)
bool raw_edge_happy(const std::vector<VertexId>& edge, const CfColoring& f) {
  for (const VertexId v : edge) {
    std::size_t count = 0;
    for (const VertexId u : edge) count += static_cast<std::size_t>(f[u] == f[v]);
    if (count == 1) return true;
  }
  return false;
}

/// Would removing `v` leave every incident edge happy under f?  Edges
/// emptied by the removal are erased (mutation.hpp semantics) and impose
/// no constraint.
bool removal_keeps_witness(const std::vector<std::vector<VertexId>>& edges,
                           VertexId v, const CfColoring& f) {
  for (const auto& edge : edges) {
    if (std::find(edge.begin(), edge.end(), v) == edge.end()) continue;
    std::vector<VertexId> shrunk;
    shrunk.reserve(edge.size() - 1);
    for (const VertexId u : edge)
      if (u != v) shrunk.push_back(u);
    if (!shrunk.empty() && !raw_edge_happy(shrunk, f)) return false;
  }
  return true;
}

}  // namespace

const std::vector<std::string>& hyper_family_names() {
  static const std::vector<std::string> kNames = {
      "planted-k2",         "planted-k3",         "planted-k4",
      "interval",           "ring-neighborhoods", "path-neighborhoods",
  };
  return kNames;
}

HyperInstance make_family(const std::string& family, std::uint64_t seed) {
  if (family == "planted-k2")
    return planted_family(family, seed, 28, 20, 2, 1.0);
  if (family == "planted-k3")
    return planted_family(family, seed, 36, 26, 3, 0.75);
  if (family == "planted-k4")
    return planted_family(family, seed, 48, 24, 4, 0.5);
  if (family == "interval") {
    // Dyadic witness: intervals over 32 points admit CF 6-coloring.
    Rng rng(seed);
    HyperInstance out;
    out.family = family;
    out.seed = seed;
    out.hypergraph = interval_hypergraph(32, 40, 2, 8, rng);
    out.k = 6;
    out.witness = dyadic_interval_cf_coloring(32);
    return out;
  }
  if (family == "ring-neighborhoods") {
    // Ring length a multiple of 3 so the mod-3 pattern wraps cleanly.
    const std::size_t n = 9 + 3 * (SplitMix64(seed).next() % 5);
    HyperInstance out;
    out.family = family;
    out.seed = seed;
    out.hypergraph = closed_neighborhood_hypergraph(ring(n));
    out.k = 3;
    out.witness = mod3_pattern(n);
    return out;
  }
  if (family == "path-neighborhoods") {
    const std::size_t n = 7 + SplitMix64(seed).next() % 18;
    HyperInstance out;
    out.family = family;
    out.seed = seed;
    out.hypergraph = closed_neighborhood_hypergraph(path(n));
    out.k = 3;
    out.witness = mod3_pattern(n);
    return out;
  }
  PSL_CHECK_MSG(false, "unknown hypergraph family " << family);
  return {};  // unreachable
}

HyperInstance arbitrary_instance(Rng& rng, const std::string& force_family) {
  const auto& names = hyper_family_names();
  const std::string family =
      force_family.empty()
          ? names[static_cast<std::size_t>(rng.next_below(names.size()))]
          : force_family;
  return make_family(family, rng.next_u64());
}

Graph arbitrary_graph(Rng& rng, std::size_t max_n) {
  PSL_EXPECTS(max_n >= 8);
  // Multi-draw cases hoist every rng call into a named local: function
  // arguments are indeterminately sequenced, and the draw order must not
  // depend on the compiler.
  switch (rng.next_below(12)) {
    case 0:
      return Graph::from_edges(rng.next_below(max_n + 1), {});
    case 1:
      return ring(3 + rng.next_below(max_n - 2));
    case 2:
      return path(1 + rng.next_below(max_n));
    case 3: {
      const std::size_t rows = 1 + rng.next_below(6);
      const std::size_t cols = 1 + rng.next_below(6);
      return grid(rows, cols);
    }
    case 4:
      return complete(1 + rng.next_below(std::min<std::size_t>(max_n, 10)));
    case 5: {
      const std::size_t a = 1 + rng.next_below(5);
      const std::size_t b = 1 + rng.next_below(5);
      return complete_bipartite(a, b);
    }
    case 6: {
      const std::size_t n = 1 + rng.next_below(max_n);
      const double p = 0.05 + 0.1 * rng.next_double();
      return gnp(n, p, rng);
    }
    case 7: {
      const std::size_t n = 1 + rng.next_below(max_n / 2);
      const double p = 0.3 + 0.4 * rng.next_double();
      return gnp(n, p, rng);
    }
    case 8:
      return random_tree(1 + rng.next_below(max_n), rng);
    case 9: {
      const std::size_t n = 8 + rng.next_below(max_n - 7);
      const double beta = 2.0 + rng.next_double();
      const double avg_deg = 2.0 + 2.0 * rng.next_double();
      return power_law(n, beta, avg_deg, rng);
    }
    case 10: {
      const std::size_t n = 4 + rng.next_below(max_n - 3);
      const std::size_t d =
          1 + rng.next_below(std::min<std::size_t>(4, n - 1));
      return random_near_regular(n, d, rng);
    }
    default: {
      std::vector<std::size_t> sizes(1 + rng.next_below(5));
      for (auto& s : sizes) s = 1 + rng.next_below(4);
      return disjoint_cliques(sizes);
    }
  }
}

Hypergraph arbitrary_tiny_hypergraph(Rng& rng, std::size_t max_n) {
  PSL_EXPECTS(max_n >= 1);
  const std::size_t n = 1 + rng.next_below(max_n);
  const std::size_t m = rng.next_below(8);
  std::vector<std::vector<VertexId>> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    const std::size_t s =
        1 + rng.next_below(std::min<std::size_t>(n, 4));
    std::vector<VertexId> edge;
    for (const std::size_t v : rng.sample_without_replacement(n, s))
      edge.push_back(static_cast<VertexId>(v));
    edges.push_back(std::move(edge));
  }
  return Hypergraph(n, std::move(edges));
}

const std::vector<std::string>& mutation_family_names() {
  static const std::vector<std::string> kNames = {"mutation_heavy",
                                                  "churn_burst"};
  return kNames;
}

MutationScript make_mutation_family(const std::string& family,
                                    std::uint64_t seed) {
  PSL_CHECK_MSG(family == "mutation_heavy" || family == "churn_burst",
                "unknown mutation family " << family);
  Rng rng(seed);
  MutationScript out;
  out.family = family;
  out.seed = seed;

  // Small planted base: the exact differential leg re-solves G_k after
  // every step, so keep triples in the hundreds.
  PlantedCfParams params;
  params.n = 12 + rng.next_below(5);  // 12..16
  params.m = 8 + rng.next_below(5);   // 8..12
  params.k = 2 + rng.next_below(2);   // 2..3
  params.epsilon = 1.0;
  auto inst = planted_cf_colorable(params, rng);
  out.base.family = family;
  out.base.seed = seed;
  out.base.hypergraph = std::move(inst.hypergraph);
  out.base.k = inst.k;
  out.base.witness = inst.planted_coloring;
  out.witness = out.base.witness;

  // Tracked raw state: every emitted mutation is applied here first, so
  // validity at each prefix holds by construction.
  std::size_t n = out.base.hypergraph.vertex_count();
  std::vector<std::vector<VertexId>> edges;
  for (EdgeId e = 0; e < out.base.hypergraph.edge_count(); ++e) {
    const auto vs = out.base.hypergraph.edge(e);
    edges.emplace_back(vs.begin(), vs.end());
  }
  const auto push = [&](Mutation mut) {
    apply_mutation(n, edges, mut);
    out.script.push_back(std::move(mut));
  };
  const auto push_vertex = [&] {
    const std::size_t color = 1 + rng.next_below(out.base.k);
    push(Mutation::add_vertex());
    out.witness.push_back(color);
  };

  if (family == "mutation_heavy") {
    const std::size_t steps = 4 + rng.next_below(5);  // 4..8
    for (std::size_t i = 0; i < steps; ++i) {
      const std::uint64_t roll = rng.next_below(100);
      if (roll < 50) {
        // Witness-respecting insert: rejection-sample a small vertex set
        // that stays happy under the witness; fall back to duplicating an
        // existing edge (trivially happy under the same coloring).
        bool placed = false;
        for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
          const std::size_t size =
              2 + rng.next_below(std::min<std::size_t>(3, n - 1));
          std::vector<VertexId> vs;
          for (const std::size_t v : rng.sample_without_replacement(n, size))
            vs.push_back(static_cast<VertexId>(v));
          std::sort(vs.begin(), vs.end());
          if (raw_edge_happy(vs, out.witness)) {
            push(Mutation::add_edge(std::move(vs)));
            placed = true;
          }
        }
        if (!placed && !edges.empty()) {
          const std::size_t e = rng.next_below(edges.size());
          push(Mutation::add_edge(edges[e]));
        }
      } else if (roll < 75) {
        if (edges.empty())
          push_vertex();
        else
          push(Mutation::remove_edge(
              static_cast<EdgeId>(rng.next_below(edges.size()))));
      } else if (roll < 90) {
        // remove_vertex shrinks incident edges; accept only if every
        // survivor stays happy, else degrade to remove_edge.
        bool placed = false;
        for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
          const auto v = static_cast<VertexId>(rng.next_below(n));
          if (removal_keeps_witness(edges, v, out.witness)) {
            push(Mutation::remove_vertex(v));
            placed = true;
          }
        }
        if (!placed) {
          if (edges.empty())
            push_vertex();
          else
            push(Mutation::remove_edge(
                static_cast<EdgeId>(rng.next_below(edges.size()))));
        }
      } else {
        push_vertex();
      }
    }
  } else {  // churn_burst
    const std::size_t bursts = 1 + rng.next_below(2);  // 1..2
    for (std::size_t b = 0; b < bursts; ++b) {
      if (edges.empty()) {
        push_vertex();
        continue;
      }
      const std::size_t width = std::min<std::size_t>(
          edges.size(), 2 + rng.next_below(3));  // 2..4
      auto ids = rng.sample_without_replacement(edges.size(), width);
      std::sort(ids.begin(), ids.end());
      std::vector<std::vector<VertexId>> contents;
      for (const std::size_t id : ids) contents.push_back(edges[id]);
      // Tear out highest id first so the remaining targets stay valid,
      // then re-add the recorded contents: the epoch chain and caches
      // churn, but the endpoint hypergraph is content-identical.
      for (std::size_t j = ids.size(); j-- > 0;)
        push(Mutation::remove_edge(static_cast<EdgeId>(ids[j])));
      const bool interleave = rng.next_bool(0.5);
      if (interleave) push_vertex();
      for (auto& content : contents)
        push(Mutation::add_edge(std::move(content)));
    }
  }
  return out;
}

MutationScript arbitrary_mutation_script(Rng& rng,
                                         const std::string& force_family) {
  const auto& names = mutation_family_names();
  const std::string family =
      force_family.empty()
          ? names[static_cast<std::size_t>(rng.next_below(names.size()))]
          : force_family;
  return make_mutation_family(family, rng.next_u64());
}

service::TraceParams arbitrary_trace_params(Rng& rng) {
  service::TraceParams tp;
  tp.seed = rng.next_u64();
  tp.requests = 16 + rng.next_below(25);
  tp.instance_pool = 2 + rng.next_below(3);
  tp.n = 24 + rng.next_below(17);
  tp.m = 18 + rng.next_below(13);
  tp.k = 2 + rng.next_below(2);
  tp.seed_variants = 1 + rng.next_below(2);
  // Random mix; keep every weight positive so all five kinds stay covered.
  tp.weight_build = 1 + static_cast<unsigned>(rng.next_below(8));
  tp.weight_greedy = 1 + static_cast<unsigned>(rng.next_below(8));
  tp.weight_luby = 1 + static_cast<unsigned>(rng.next_below(8));
  tp.weight_cf = 1 + static_cast<unsigned>(rng.next_below(8));
  tp.weight_reduction = 1 + static_cast<unsigned>(rng.next_below(4));
  // Sometimes zero: traces both with and without interleaved mutations.
  tp.weight_mutate = static_cast<unsigned>(rng.next_below(5));
  tp.mutate_script_len = 2 + rng.next_below(3);
  return tp;
}

std::string describe(const Graph& g) {
  std::ostringstream os;
  os << "graph n=" << g.vertex_count() << " edges=[";
  bool first = true;
  for (const auto& [u, v] : g.edges()) {
    if (!first) os << " ";
    os << "(" << u << "," << v << ")";
    first = false;
  }
  os << "]";
  return os.str();
}

std::string describe(const Hypergraph& h) {
  std::ostringstream os;
  os << "hypergraph n=" << h.vertex_count() << " edges=[";
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    if (e > 0) os << " ";
    os << "{";
    bool first = true;
    for (const VertexId v : h.edge(e)) {
      if (!first) os << ",";
      os << v;
      first = false;
    }
    os << "}";
  }
  os << "]";
  return os.str();
}

std::string describe(const MutationScript& ms) {
  std::ostringstream os;
  os << "mutation-script family=" << ms.family << " seed=" << ms.seed
     << " k=" << ms.base.k << " base=" << describe(ms.base.hypergraph)
     << " script=" << describe(ms.script);
  return os.str();
}

}  // namespace pslocal::qc
