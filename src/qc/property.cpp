#include "qc/property.hpp"

#include <bit>
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>
#include <thread>

#include "net/wire.hpp"
#include "obs/obs.hpp"
#include "qc/fault.hpp"
#include "qc/gen.hpp"
#include "qc/oracles.hpp"
#include "qc/shrink.hpp"
#include "qos/fair_queue.hpp"
#include "service/engine.hpp"
#include "shard/shard.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace pslocal::qc {

namespace {

/// Run a checker, converting a thrown exception (ContractViolation from a
/// solver, say) into a failure message — a crash is a counterexample too,
/// and the shrinker needs the predicate to be total.
template <typename Fn>
std::optional<std::string> guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  }
}

std::string describe_requests(const service::TraceParams& params,
                              const FaultPlan& plan,
                              const std::vector<service::Request>& requests) {
  std::ostringstream os;
  os << "trace seed=" << params.seed << " plan{queue=" << plan.queue_capacity
     << " burst=" << plan.burst << " cache=" << plan.cache_entries
     << (plan.disable_cache ? " cache-off" : "")
     << (plan.shuffle_scheduler ? " shuffled" : "") << "} requests=[";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i > 0) os << " ";
    os << requests[i].id << ":" << service::kind_name(requests[i].kind);
  }
  os << "]";
  return os.str();
}

Failure make_failure(std::string message, std::string counterexample,
                     const ShrinkLog& log) {
  Failure f;
  f.message = std::move(message);
  f.counterexample = std::move(counterexample);
  f.shrink_attempts = log.attempts;
  f.shrink_accepted = log.accepted;
  return f;
}

/// Shrink a failing graph against `check` and build the Failure from the
/// minimal witness.
Failure shrink_graph_failure(
    Graph g, const std::function<std::optional<std::string>(const Graph&)>&
                 check) {
  ShrinkLog log;
  const Graph minimal = shrink_graph(
      std::move(g),
      [&check](const Graph& c) { return guarded([&] { return check(c); }).has_value(); },
      &log);
  const auto msg = guarded([&] { return check(minimal); });
  return make_failure(msg.value_or("failure vanished on the minimal witness"),
                      describe(minimal), log);
}

Property mis_differential_property() {
  return {"mis-differential", [](Rng& rng) -> std::optional<Failure> {
            const std::uint64_t solver_seed = rng.next_u64();
            Graph g = arbitrary_graph(rng);
            const auto check = [solver_seed](const Graph& c) {
              return check_mis_differential(c, solver_seed);
            };
            if (!guarded([&] { return check(g); })) return std::nullopt;
            return shrink_graph_failure(std::move(g), check);
          }};
}

Property cf_differential_property() {
  return {"cf-differential", [](Rng& rng) -> std::optional<Failure> {
            Hypergraph h = arbitrary_tiny_hypergraph(rng);
            const auto check = [](const Hypergraph& c) {
              return check_cf_differential(c);
            };
            if (!guarded([&] { return check(h); })) return std::nullopt;
            ShrinkLog log;
            const Hypergraph minimal = shrink_hypergraph(
                std::move(h),
                [&check](const Hypergraph& c) {
                  return guarded([&] { return check(c); }).has_value();
                },
                /*edges_only=*/false, &log);
            const auto msg = guarded([&] { return check(minimal); });
            return make_failure(
                msg.value_or("failure vanished on the minimal witness"),
                describe(minimal), log);
          }};
}

/// Shared scaffold for the two witness-carrying instance properties:
/// generate a named-family instance, check, and shrink EDGES ONLY so the
/// CF k-colorability certificate stays valid on every candidate.
Property instance_property(
    std::string name, std::string force_family,
    std::function<std::optional<std::string>(const HyperInstance&,
                                             std::uint64_t)>
        check) {
  return {std::move(name),
          [force_family, check](Rng& rng) -> std::optional<Failure> {
            const std::uint64_t check_seed = rng.next_u64();
            HyperInstance inst = arbitrary_instance(rng, force_family);
            const auto run = [&check, check_seed](const HyperInstance& c) {
              return check(c, check_seed);
            };
            if (!guarded([&] { return run(inst); })) return std::nullopt;
            ShrinkLog log;
            HyperInstance candidate = inst;
            candidate.hypergraph = shrink_hypergraph(
                std::move(inst.hypergraph),
                [&](const Hypergraph& h) {
                  HyperInstance probe = candidate;
                  probe.hypergraph = h;
                  return guarded([&] { return run(probe); }).has_value();
                },
                /*edges_only=*/true, &log);
            const auto msg = guarded([&] { return run(candidate); });
            std::ostringstream witness;
            witness << "family=" << candidate.family
                    << " seed=" << candidate.seed << " k=" << candidate.k
                    << " " << describe(candidate.hypergraph);
            return make_failure(
                msg.value_or("failure vanished on the minimal witness"),
                witness.str(), log);
          }};
}

Property service_differential_property() {
  return {"service-differential", [](Rng& rng) -> std::optional<Failure> {
            const service::TraceParams params = arbitrary_trace_params(rng);
            const FaultPlan plan = arbitrary_fault_plan(rng);
            const service::Trace trace = service::generate_trace(params);
            const auto failing = [&plan, &trace](
                                     const std::vector<service::Request>& rs) {
              service::Trace sub;
              sub.instances = trace.instances;
              sub.instance_hashes = trace.instance_hashes;
              sub.requests = rs;
              const FaultReport r = run_fault_plan(plan, sub);
              return !r.ok();
            };
            const FaultReport report = run_fault_plan(plan, trace);
            if (report.ok()) return std::nullopt;
            ShrinkLog log;
            const auto minimal = shrink_requests(
                trace.requests,
                [&failing](const std::vector<service::Request>& rs) {
                  bool fails = false;
                  (void)guarded([&]() -> std::optional<std::string> {
                    fails = failing(rs);
                    return std::nullopt;
                  });
                  return fails;
                },
                &log);
            service::Trace sub;
            sub.instances = trace.instances;
            sub.instance_hashes = trace.instance_hashes;
            sub.requests = minimal;
            const FaultReport final_report = run_fault_plan(plan, sub);
            return make_failure(final_report.error.empty()
                                    ? report.error
                                    : final_report.error,
                                describe_requests(params, plan, minimal), log);
          }};
}

Property hash_sensitivity_property() {
  return {"hash-sensitivity", [](Rng& rng) -> std::optional<Failure> {
            // Payload streams differing in exactly one field must digest
            // differently (collision smoke over the canonical encoding).
            const std::size_t fields = 1 + rng.next_below(8);
            std::vector<std::uint64_t> payload(fields);
            for (auto& w : payload) w = rng.next_u64();
            const std::size_t flip = rng.next_below(fields);
            const std::uint64_t delta = 1ULL << rng.next_below(64);
            Fnv1a64 a, b;
            for (std::size_t i = 0; i < fields; ++i) {
              a.update_u64(payload[i]);
              b.update_u64(i == flip ? payload[i] ^ delta : payload[i]);
            }
            if (a.digest() == b.digest()) {
              Failure f;
              f.message = "one-field flip collided under Fnv1a64";
              std::ostringstream os;
              os << "fields=" << fields << " flip=" << flip
                 << " delta=" << delta;
              f.counterexample = os.str();
              return f;
            }
            // hex64 must round-trip any word.
            const std::uint64_t word = rng.next_u64();
            if (parse_hex64(hex64(word)) != word) {
              Failure f;
              f.message = "hex64 round trip failed";
              f.counterexample = hex64(word);
              return f;
            }
            return std::nullopt;
          }};
}

/// A random valid frame of a random kind; request frames carry a real
/// encoded request so the payload codec is exercised too.
net::wire::Frame arbitrary_frame(Rng& rng) {
  net::wire::Frame frame;
  frame.request_id = rng.next_u64();
  switch (rng.next_below(3)) {
    case 0: {
      frame.kind = net::wire::FrameKind::kRequest;
      service::Request req;
      req.kind = static_cast<service::RequestKind>(rng.next_below(7));
      req.k = 1 + rng.next_below(5);
      req.seed = rng.next_u64();
      req.solver = rng.next_bool(0.5) ? "greedy-mindeg" : "luby";
      req.instance = std::make_shared<const Hypergraph>(
          arbitrary_tiny_hypergraph(rng));
      if (req.kind == service::RequestKind::kMutateHypergraph) {
        // Structurally arbitrary script: the codec round trip is what is
        // under test, not script semantics.
        const std::size_t steps = rng.next_below(4);
        for (std::size_t i = 0; i < steps; ++i) {
          switch (rng.next_below(4)) {
            case 0: {
              std::vector<VertexId> vs(1 + rng.next_below(3));
              for (auto& v : vs)
                v = static_cast<VertexId>(rng.next_below(16));
              req.script.push_back(Mutation::add_edge(std::move(vs)));
              break;
            }
            case 1:
              req.script.push_back(Mutation::remove_edge(
                  static_cast<EdgeId>(rng.next_below(8))));
              break;
            case 2:
              req.script.push_back(Mutation::add_vertex());
              break;
            default:
              req.script.push_back(Mutation::remove_vertex(
                  static_cast<VertexId>(rng.next_below(16))));
              break;
          }
        }
      }
      frame.payload = net::wire::encode_request(req);
      // Some requests ride with a QoS tenant id — the optional v2
      // header field (docs/qos.md); the decoder must keep it and the
      // payload apart under any chunking.
      if (rng.next_bool(0.3)) {
        for (std::size_t i = 1 + rng.next_below(12); i > 0; --i)
          frame.tenant += static_cast<char>('a' + rng.next_below(26));
      }
      break;
    }
    case 1: {
      frame.kind = net::wire::FrameKind::kResponse;
      service::Response resp;
      resp.status = static_cast<service::Response::Status>(rng.next_below(3));
      resp.cache_hit = rng.next_bool(0.5);
      resp.key = rng.next_u64();
      resp.reason = resp.status == service::Response::Status::kOk ? "" : "why";
      for (std::size_t i = rng.next_below(40); i > 0; --i)
        resp.result += static_cast<char>('a' + rng.next_below(26));
      frame.payload = net::wire::encode_response(resp);
      break;
    }
    default:
      frame.kind = net::wire::FrameKind::kNack;
      switch (rng.next_below(3)) {
        case 0:
          frame.payload =
              net::wire::encode_nack(net::wire::NackCode::kQueueFull);
          break;
        case 1:
          frame.payload =
              net::wire::encode_nack(net::wire::NackCode::kShutdown);
          break;
        default:  // shed NACK carries its retry hint in the payload
          frame.payload = net::wire::encode_nack(
              net::wire::NackCode::kShedRetryAfter, rng.next_u64() >> 20);
          break;
      }
      break;
  }
  return frame;
}

/// Feed `bytes` to a fresh decoder in random-sized chunks and collect
/// every frame it emits plus its final status.
struct DecodeRun {
  std::vector<net::wire::Frame> frames;
  bool corrupt = false;
  std::string error;
  std::size_t leftover = 0;
};

DecodeRun run_decoder(Rng& rng, std::string_view bytes) {
  net::wire::FrameDecoder decoder;
  DecodeRun run;
  std::size_t pos = 0;
  while (pos < bytes.size() && !run.corrupt) {
    const std::size_t chunk =
        1 + rng.next_below(std::min<std::uint64_t>(bytes.size() - pos, 97));
    decoder.feed(bytes.data() + pos, chunk);
    pos += chunk;
    for (;;) {
      net::wire::Frame frame;
      const auto result = decoder.next(frame);
      if (result == net::wire::FrameDecoder::Result::kFrame) {
        run.frames.push_back(std::move(frame));
        continue;
      }
      if (result == net::wire::FrameDecoder::Result::kCorrupt) {
        run.corrupt = true;
        run.error = decoder.error();
      }
      break;
    }
  }
  run.leftover = decoder.buffered();
  return run;
}

/// Frame-decoder fuzz: valid frames round-trip byte-exactly under any
/// chunking; truncated / bit-flipped / length-lied / garbage streams
/// are rejected (or starved) without a crash and never resurface as a
/// "valid" copy of the original frame.
Property net_frame_property() {
  return {"net_frame", [](Rng& rng) -> std::optional<Failure> {
            const auto fail = [](std::string msg, std::string witness) {
              Failure f;
              f.message = std::move(msg);
              f.counterexample = std::move(witness);
              return f;
            };
            // Valid round trip over a small random frame sequence.
            std::vector<net::wire::Frame> sent;
            std::string stream;
            const std::size_t count = 1 + rng.next_below(4);
            for (std::size_t i = 0; i < count; ++i) {
              sent.push_back(arbitrary_frame(rng));
              stream += net::wire::encode_frame(sent.back());
            }
            DecodeRun run = run_decoder(rng, stream);
            if (run.corrupt)
              return fail("valid stream flagged corrupt: " + run.error,
                          "frames=" + std::to_string(count));
            if (run.frames.size() != count || run.leftover != 0)
              return fail("valid stream yielded " +
                              std::to_string(run.frames.size()) + " frames, " +
                              std::to_string(run.leftover) + " bytes left",
                          "frames=" + std::to_string(count));
            for (std::size_t i = 0; i < count; ++i) {
              if (run.frames[i].kind != sent[i].kind ||
                  run.frames[i].request_id != sent[i].request_id ||
                  run.frames[i].tenant != sent[i].tenant ||
                  run.frames[i].payload != sent[i].payload)
                return fail("frame round trip not byte-exact",
                            "frame index " + std::to_string(i));
            }

            // Mutations of a single valid frame.
            const net::wire::Frame victim = arbitrary_frame(rng);
            const std::string bytes = net::wire::encode_frame(victim);
            // payload_len on the wire covers the tenant prefix too.
            const std::size_t region_size =
                victim.tenant.size() + victim.payload.size();
            switch (rng.next_below(5)) {
              case 0: {  // truncation: a torn frame is starvation, not UB
                const std::size_t keep = rng.next_below(bytes.size());
                run = run_decoder(rng, std::string_view(bytes).substr(0, keep));
                if (run.corrupt || !run.frames.empty())
                  return fail("truncated frame produced " +
                                  std::string(run.corrupt ? "corrupt"
                                                          : "a frame"),
                              "keep=" + std::to_string(keep));
                break;
              }
              case 1: {  // payload bit flip: checksum must catch it
                if (victim.payload.empty()) break;
                std::string flipped = bytes;
                const std::size_t byte_index =
                    net::wire::kHeaderSize +
                    rng.next_below(victim.payload.size());
                flipped[byte_index] ^=
                    static_cast<char>(1u << rng.next_below(8));
                run = run_decoder(rng, flipped);
                if (!run.corrupt)
                  return fail("payload bit flip not flagged corrupt",
                              "byte=" + std::to_string(byte_index));
                break;
              }
              case 2: {  // length lie: rewrite payload_len, keep the rest
                std::string lied = bytes;
                const std::uint64_t lie = rng.next_bool(0.5)
                                              ? rng.next_u64()  // often huge
                                              : rng.next_below(region_size + 64);
                for (int i = 0; i < 4; ++i)
                  lied[16 + static_cast<std::size_t>(i)] =
                      static_cast<char>(lie >> (8 * i));
                run = run_decoder(rng, lied);
                const std::uint32_t new_len =
                    static_cast<std::uint32_t>(lie);
                if (new_len != region_size && !run.frames.empty())
                  return fail("length-lied frame decoded as valid",
                              "lie=" + std::to_string(new_len));
                break;
              }
              case 3: {  // tenant-length lie beyond the payload bound:
                         // the decoder must reject before trusting it
                         // (regression pin — a lying tenant_len once
                         // sliced past the checksummed region).
                std::string lied = bytes;
                const std::uint64_t lie =
                    region_size + 1 + rng.next_below(1u << 20);
                for (int i = 0; i < 4; ++i)
                  lied[20 + static_cast<std::size_t>(i)] =
                      static_cast<char>(lie >> (8 * i));
                run = run_decoder(rng, lied);
                if (!run.corrupt)
                  return fail("tenant length beyond payload bound not "
                              "flagged corrupt",
                              "tenant_len=" + std::to_string(lie) +
                                  " payload_len=" +
                                  std::to_string(region_size));
                break;
              }
              default: {  // garbage prefix: wrong magic is caught at once
                std::string garbage;
                for (std::size_t i = 0; i < 64; ++i)
                  garbage += static_cast<char>(rng.next_below(256));
                const bool magic_fluke =
                    garbage.size() >= 4 &&
                    garbage.compare(0, 4, bytes, 0, 4) == 0;
                run = run_decoder(rng, garbage);
                if (!magic_fluke && !run.corrupt)
                  return fail("garbage stream not flagged corrupt",
                              "len=64");
                break;
              }
            }

            // The request payload codec round-trips through the decoded
            // hypergraph: content hash and re-encoded bytes both match.
            service::Request req;
            req.kind = service::RequestKind::kLubyMis;
            req.k = 1 + rng.next_below(4);
            req.seed = rng.next_u64();
            req.instance = std::make_shared<const Hypergraph>(
                arbitrary_tiny_hypergraph(rng));
            const std::string payload = net::wire::encode_request(req);
            service::Request decoded;
            std::string error;
            if (!net::wire::decode_request(payload, decoded, &error))
              return fail("valid request payload rejected: " + error,
                          describe(*req.instance));
            if (decoded.instance_hash != hash_hypergraph(*req.instance) ||
                net::wire::encode_request(decoded) != payload)
              return fail("request payload round trip not byte-exact",
                          describe(*req.instance));
            return std::nullopt;
          }};
}

/// mix64 is pinned to SplitMix64's output function and must avalanche:
/// flipping any single input bit flips each output bit with probability
/// ~1/2 (Binomial(64, 1/2) — a flip count outside [8, 56] at any of the
/// sampled bits is a ~1e-9 event per sample, i.e. a broken mixer).
Property mix64_avalanche_property() {
  return {"mix64_avalanche", [](Rng& rng) -> std::optional<Failure> {
            const auto fail = [](std::string msg, std::string witness) {
              Failure f;
              f.message = std::move(msg);
              f.counterexample = std::move(witness);
              return f;
            };
            const std::uint64_t x = rng.next_u64();
            if (mix64(x) != SplitMix64(x).next())
              return fail("mix64 diverged from SplitMix64",
                          "x=" + std::to_string(x));
            for (int sample = 0; sample < 8; ++sample) {
              const auto bit = rng.next_below(64);
              const int flips = std::popcount(
                  mix64(x) ^ mix64(x ^ (1ULL << bit)));
              if (flips < 8 || flips > 56)
                return fail("poor avalanche: " + std::to_string(flips) +
                                "/64 output bits flipped",
                            "x=" + std::to_string(x) +
                                " bit=" + std::to_string(bit));
            }
            return std::nullopt;
          }};
}

/// Ring placement is a pure function of (seed, key, topology): rebuilt
/// rings agree, replica lists are duplicate-free and owner-first, and
/// dropping the last shard relocates only that shard's keys.
Property shard_ring_property() {
  return {"shard_ring", [](Rng& rng) -> std::optional<Failure> {
            const auto fail = [](std::string msg, std::string witness) {
              Failure f;
              f.message = std::move(msg);
              f.counterexample = std::move(witness);
              return f;
            };
            shard::RingConfig cfg;
            cfg.seed = rng.next_u64();
            cfg.vnodes = 1 + rng.next_below(96);
            const std::size_t shards = 1 + rng.next_below(8);
            const shard::HashRing ring(shards, cfg);
            const shard::HashRing twin(shards, cfg);
            const shard::HashRing smaller(shards > 1 ? shards - 1 : 1, cfg);
            std::ostringstream w;
            w << "seed=" << cfg.seed << " vnodes=" << cfg.vnodes
              << " shards=" << shards;
            for (int i = 0; i < 32; ++i) {
              const std::uint64_t key = rng.next_u64();
              const std::size_t own = ring.owner(key);
              if (own >= shards)
                return fail("owner out of range", w.str());
              if (twin.owner(key) != own)
                return fail("rebuilt ring disagrees on owner", w.str());
              const std::size_t count = 1 + rng.next_below(shards);
              const auto reps = ring.replicas(key, count);
              if (reps.size() != count || reps.front() != own)
                return fail("replica list not owner-first", w.str());
              std::vector<bool> seen(shards, false);
              for (const std::size_t s : reps) {
                if (s >= shards || seen[s])
                  return fail("replica list has duplicates", w.str());
                seen[s] = true;
              }
              if (shards > 1 && own != shards - 1 &&
                  smaller.owner(key) != own)
                return fail("scale-down moved a key the removed shard "
                            "did not own",
                            w.str());
            }
            return std::nullopt;
          }};
}

/// Failover fault injection: a 2-shard cluster at replication factor 2
/// loses one shard mid-run and must still answer every request exactly
/// once (first-response-wins covers in-flight requests, transport-error
/// failover covers later ones, drain absorbs the duplicates).
Property shard_failover_property() {
  return {"shard_failover", [](Rng& rng) -> std::optional<Failure> {
            const auto fail = [](std::string msg, std::string witness) {
              Failure f;
              f.message = std::move(msg);
              f.counterexample = std::move(witness);
              return f;
            };
            service::TraceParams tp;
            tp.seed = rng.next_u64();
            tp.requests = 6 + rng.next_below(6);
            tp.instance_pool = 3;
            tp.n = 24;
            tp.m = 16;
            const service::Trace trace = service::generate_trace(tp);
            const std::size_t kill_shard = rng.next_below(2);
            const std::size_t kill_at = rng.next_below(trace.requests.size());
            std::ostringstream w;
            w << "trace seed=" << tp.seed << " requests=" << tp.requests
              << " kill shard " << kill_shard << " at request " << kill_at;

            shard::LocalClusterConfig cc;
            cc.shards = 2;
            cc.replication = 2;
            cc.ring_seed = tp.seed;
            shard::LocalCluster cluster(cc);
            cluster.start();
            shard::ShardClientConfig scc;
            scc.topology = cluster.topology();
            scc.retry.seed = tp.seed;
            shard::ShardClient client(scc);
            client.connect();
            for (std::size_t i = 0; i < trace.requests.size(); ++i) {
              if (i == kill_at) cluster.kill_shard(kill_shard);
              const net::Client::Result r = client.call(trace.requests[i]);
              if (r.outcome != net::Client::Outcome::kOk)
                return fail(std::string("request lost under failover: ") +
                                net::Client::outcome_name(r.outcome) +
                                (r.error.empty() ? "" : " (" + r.error + ")"),
                            w.str());
              if (r.response.result.empty())
                return fail("empty payload under failover", w.str());
            }
            client.drain();
            if (client.stats().pending_duplicates != 0)
              return fail("duplicates left unabsorbed after drain", w.str());
            return std::nullopt;
          }};
}

/// End-to-end trace propagation (docs/tracing.md), across 1/2/4-shard
/// topologies at rf=1/2:
///  * the response frame echoes each request's explicit trace_id,
///  * payload bytes are identical with and without trace ids on the
///    wire (tracing must never leak into canonical payloads),
///  * and — when obs is compiled in and no outer session is running —
///    the spans recorded for each request form one tree rooted at the
///    client's "shard.call", with every replica attempt a direct child.
Property trace_propagation_property() {
  return {"trace_propagation", [](Rng& rng) -> std::optional<Failure> {
            const auto fail = [](std::string msg, std::string witness) {
              Failure f;
              f.message = std::move(msg);
              f.counterexample = std::move(witness);
              return f;
            };
            const std::size_t shard_choices[] = {1, 2, 4};
            const std::size_t shards = shard_choices[rng.next_below(3)];
            const std::size_t rf = shards >= 2 ? 1 + rng.next_below(2) : 1;
            service::TraceParams tp;
            tp.seed = rng.next_u64();
            tp.requests = 4 + rng.next_below(4);
            tp.instance_pool = 3;
            tp.n = 24;
            tp.m = 16;
            const service::Trace trace = service::generate_trace(tp);
            std::ostringstream w;
            w << "trace seed=" << tp.seed << " shards=" << shards
              << " rf=" << rf << " requests=" << trace.requests.size();

            shard::LocalClusterConfig cc;
            cc.shards = shards;
            cc.replication = rf;
            cc.ring_seed = tp.seed;
            shard::LocalCluster cluster(cc);
            cluster.start();
            shard::ShardClientConfig scc;
            scc.topology = cluster.topology();
            scc.retry.seed = tp.seed;
            shard::ShardClient client(scc);
            client.connect();

            // Pass 1: no explicit trace ids (the ambient context is also
            // empty here, so the wire may still carry a minted root id —
            // what matters is the payload baseline).
            std::vector<std::string> baseline;
            for (const service::Request& req : trace.requests) {
              const net::Client::Result r = client.call(req);
              if (r.outcome != net::Client::Outcome::kOk)
                return fail(std::string("untraced request failed: ") +
                                net::Client::outcome_name(r.outcome),
                            w.str());
              baseline.push_back(r.response.result);
            }

            // Pass 2: explicit per-request trace ids, under a private
            // span session when one can be opened.
            const bool session = obs::kEnabled && !obs::tracing_active();
            std::string trace_path;
            if (session) {
              trace_path =
                  "qc_trace_propagation_" + std::to_string(tp.seed) + ".json";
              obs::start_tracing(trace_path);
            }
            std::vector<std::uint64_t> tids;
            std::optional<Failure> failure;
            for (std::size_t i = 0; i < trace.requests.size(); ++i) {
              service::Request req = trace.requests[i];
              std::uint64_t tid = rng.next_u64();
              if (tid == 0) tid = 1;
              req.trace_id = tid;
              tids.push_back(tid);
              const net::Client::Result r = client.call(req);
              if (r.outcome != net::Client::Outcome::kOk) {
                failure = fail(std::string("traced request failed: ") +
                                   net::Client::outcome_name(r.outcome),
                               w.str());
                break;
              }
              if (r.trace_id != tid) {
                std::ostringstream detail;
                detail << w.str() << " request " << i << " sent trace_id 0x"
                       << std::hex << tid << " got 0x" << r.trace_id;
                failure = fail("response did not echo the request trace_id",
                               detail.str());
                break;
              }
              if (r.response.result != baseline[i]) {
                failure = fail(
                    "payload bytes differ between traced and untraced runs",
                    w.str());
                break;
              }
            }
            client.drain();
            cluster.stop();
            if (!session) return failure;

            // Parse the private session's trace and check span ancestry.
            const std::string written = obs::finish_tracing();
            if (failure.has_value()) {
              std::remove(written.c_str());
              return failure;
            }
            struct Span {
              std::string name;
              std::uint64_t trace_id = 0, parent = 0;
            };
            std::map<std::uint64_t, Span> spans;  // span_id -> span
            std::map<std::uint64_t, std::uint64_t> roots;  // tid -> span_id
            const json::Value doc = json::parse_file(written);
            std::remove(written.c_str());
            const auto hex = [](const json::Value& v) {
              return std::stoull(v.as_string(), nullptr, 16);
            };
            for (const json::Value& ev : doc.as_array()) {
              if (ev.at("ph").as_string() != "B" || !ev.has("args")) continue;
              const json::Value& args = ev.at("args");
              if (!args.has("span_id")) continue;
              Span span;
              span.name = ev.at("name").as_string();
              span.trace_id = hex(args.at("trace_id"));
              span.parent = hex(args.at("parent_span_id"));
              const std::uint64_t span_id = hex(args.at("span_id"));
              spans[span_id] = span;
              if (span.name == "shard.call") roots[span.trace_id] = span_id;
            }
            for (const std::uint64_t tid : tids) {
              const auto root = roots.find(tid);
              if (root == roots.end())
                return fail("no shard.call root span for an explicit "
                            "trace_id",
                            w.str());
              for (const auto& [span_id, span] : spans) {
                if (span.trace_id != tid || span_id == root->second) continue;
                // Walk the ancestry; every span of this trace must reach
                // the root (shard.attempt is a direct child).
                std::uint64_t at = span_id;
                std::size_t hops = 0;
                while (at != root->second && hops++ < spans.size()) {
                  const auto it = spans.find(at);
                  if (it == spans.end()) break;
                  at = it->second.parent;
                }
                if (at != root->second) {
                  std::ostringstream detail;
                  detail << w.str() << " span \"" << span.name
                         << "\" of trace 0x" << std::hex << tid
                         << " does not reach its shard.call root";
                  return fail("span tree broken", detail.str());
                }
                if (span.name == "shard.attempt" &&
                    span.parent != root->second) {
                  return fail("shard.attempt is not a direct child of "
                              "shard.call",
                              w.str());
                }
              }
            }
            return std::nullopt;
          }};
}

Property solver_kernel_lift_property() {
  return {"solver_kernel_lift", [](Rng& rng) -> std::optional<Failure> {
            const std::uint64_t solver_seed = rng.next_u64();
            Graph g = arbitrary_graph(rng);
            const auto check = [solver_seed](const Graph& c) {
              return check_solver_kernel_lift(c, solver_seed);
            };
            if (!guarded([&] { return check(g); })) return std::nullopt;
            return shrink_graph_failure(std::move(g), check);
          }};
}

/// Repair-vs-recompute over the seed-pure mutation families, shrinking
/// the mutation script to a 1-minimal failing sequence.  Deleting a step
/// can orphan later edge ids, so candidates that fail validate_script do
/// not count as counterexamples.
Property mis_repair_property(const FuzzOptions& opts) {
  // --family and --oracle are shared flag namespaces; only pin values
  // that name a mutation family / a repair leg.
  std::string family;
  for (const auto& name : mutation_family_names())
    if (opts.family == name) family = opts.family;
  std::string oracle;
  if (opts.oracle == "greedy-mindeg" || opts.oracle == "luby" ||
      opts.oracle == "exact")
    oracle = opts.oracle;
  return {"mis_repair_vs_recompute",
          [family, oracle](Rng& rng) -> std::optional<Failure> {
            const std::uint64_t check_seed = rng.next_u64();
            MutationScript ms = arbitrary_mutation_script(rng, family);
            const auto run = [&oracle, check_seed](const MutationScript& c) {
              return check_mis_repair_vs_recompute(c, check_seed, oracle);
            };
            if (!guarded([&] { return run(ms); })) return std::nullopt;
            ShrinkLog log;
            MutationScript candidate = ms;
            candidate.script = shrink_mutations(
                std::move(ms.script),
                [&](const std::vector<Mutation>& s) {
                  if (validate_script(candidate.base.hypergraph, s)
                          .has_value())
                    return false;  // orphaned ids, not a counterexample
                  MutationScript probe = candidate;
                  probe.script = s;
                  return guarded([&] { return run(probe); }).has_value();
                },
                &log);
            const auto msg = guarded([&] { return run(candidate); });
            return make_failure(
                msg.value_or("failure vanished on the minimal witness"),
                describe(candidate), log);
          }};
}

/// qos_fairness: with every lane backlogged, one full deficit-round-
/// robin round serves exactly quantum x weight requests per tenant —
/// the weighted-throughput-share guarantee, pinned exactly rather than
/// asymptotically.  And the whole (config, admission schedule) -> pop
/// sequence map is deterministic: a second queue built from the same
/// seed pops the identical tenant sequence.  The queue is driven with a
/// synthetic submit_ns clock and no worker threads, so the pinned
/// sequence is byte-identical under any --threads setting.
Property qos_fairness_property() {
  return {"qos_fairness", [](Rng& rng) -> std::optional<Failure> {
            const auto fail = [](std::string msg, std::string witness) {
              Failure f;
              f.message = std::move(msg);
              f.counterexample = std::move(witness);
              return f;
            };
            qos::QosConfig config;
            config.enabled = true;
            config.seed = rng.next_u64();
            config.quantum = 1 + rng.next_below(4);
            const std::size_t tenant_count = 2 + rng.next_below(3);
            std::uint64_t total_weight = 0;
            for (std::size_t i = 0; i < tenant_count; ++i) {
              qos::TenantConfig t;
              t.name = std::string(1, static_cast<char>('a' + i));
              t.weight = 1 + rng.next_below(4);
              total_weight += t.weight;
              config.tenants.push_back(t);
            }
            std::ostringstream witness;
            witness << "seed=" << config.seed << " quantum=" << config.quantum
                    << " weights=";
            for (const auto& t : config.tenants) witness << t.weight << ",";

            // Backlog every lane with two rounds' worth of requests, in
            // a random interleave under a synthetic admission clock.
            std::vector<std::size_t> schedule;
            for (std::size_t i = 0; i < tenant_count; ++i) {
              const std::size_t n =
                  2 * config.quantum * config.tenants[i].weight;
              for (std::size_t j = 0; j < n; ++j) schedule.push_back(i);
            }
            rng.shuffle(schedule);
            const auto fill =
                [&](qos::FairQueue& q) -> std::optional<std::string> {
              std::uint64_t clock = 1;
              for (const std::size_t idx : schedule) {
                service::Pending p;
                p.request.tenant = config.tenants[idx].name;
                p.submit_ns = clock++;
                const auto v = q.admit(std::move(p));
                if (v.admission != service::Admission::kAccepted)
                  return "rate-unlimited tenant was not admitted: " +
                         std::string(service::admission_name(v.admission));
              }
              return std::nullopt;
            };
            qos::FairQueue q1(config, schedule.size() + 1);
            qos::FairQueue q2(config, schedule.size() + 1);
            if (const auto e = fill(q1)) return fail(*e, witness.str());
            if (const auto e = fill(q2)) return fail(*e, witness.str());

            // One full DRR round over all-backlogged lanes.
            const std::size_t round = config.quantum * total_weight;
            std::vector<service::Pending> pop1, pop2;
            if (q1.pop_batch(pop1, round) != round ||
                q2.pop_batch(pop2, round) != round)
              return fail("backlogged round popped short", witness.str());
            std::map<std::string, std::size_t> counts;
            for (const auto& p : pop1) counts[p.request.tenant]++;
            for (const auto& t : config.tenants) {
              const std::size_t expect = config.quantum * t.weight;
              if (counts[t.name] != expect)
                return fail("tenant " + t.name + " served " +
                                std::to_string(counts[t.name]) +
                                " of a round, expected " +
                                std::to_string(expect),
                            witness.str());
            }
            for (std::size_t i = 0; i < round; ++i) {
              if (pop1[i].request.tenant != pop2[i].request.tenant)
                return fail("identical queues diverged at pop " +
                                std::to_string(i),
                            witness.str());
            }
            return std::nullopt;
          }};
}

/// qos_shed_purity: shedding is an admission-time verdict with no
/// compute behind it, so a request shed by the token bucket and
/// resubmitted after the hint must produce byte-identical payload to a
/// qos-off engine — and the tenant id itself must never leak into the
/// bytes (the reference request carries no tenant at all).
Property qos_shed_purity_property() {
  return {"qos_shed_purity", [](Rng& rng) -> std::optional<Failure> {
            const auto fail = [](std::string msg, std::string witness) {
              Failure f;
              f.message = std::move(msg);
              f.counterexample = std::move(witness);
              return f;
            };
            service::TraceParams tp;
            tp.seed = rng.next_u64();
            tp.requests = 1;
            tp.instance_pool = 1;
            tp.n = 12;
            tp.m = 10;
            tp.k = 2;
            const service::Trace trace = service::generate_trace(tp);
            const std::string witness = "trace seed=" +
                                        std::to_string(tp.seed);

            // Reference bytes: qos off, no tenant field.
            service::ServiceEngine ref{service::EngineConfig{}};
            ref.start();
            auto ref_sub = ref.submit(trace.requests[0]);
            if (ref_sub.admission != service::Admission::kAccepted)
              return fail("reference engine rejected the probe", witness);
            const service::Response ref_resp = ref_sub.response.get();
            ref.stop();
            if (ref_resp.status != service::Response::Status::kOk)
              return fail("reference serve failed: " + ref_resp.reason,
                          witness);

            // QoS engine with a 1-token bucket: the first accept drains
            // it, so an immediate resubmit sheds with a refill hint.
            service::EngineConfig cfg;
            cfg.qos.enabled = true;
            cfg.qos.seed = rng.next_u64();
            qos::TenantConfig tenant;
            tenant.name = "t";
            tenant.rate_rps = 1000;  // 1 token per ms
            tenant.burst = 1;
            cfg.qos.tenants = {tenant};
            service::ServiceEngine engine(cfg);
            engine.start();
            service::Request probe = trace.requests[0];
            probe.tenant = "t";

            bool shed_seen = false;
            std::string retried_bytes;
            for (int attempt = 0; attempt < 200 && retried_bytes.empty();
                 ++attempt) {
              auto sub = engine.submit(probe);
              if (sub.admission == service::Admission::kShed) {
                if (sub.retry_after_us == 0)
                  return fail("shed verdict carried no backoff hint",
                              witness);
                shed_seen = true;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(sub.retry_after_us));
                continue;
              }
              if (sub.admission != service::Admission::kAccepted)
                return fail(
                    "unexpected admission: " +
                        std::string(service::admission_name(sub.admission)),
                    witness);
              const service::Response resp = sub.response.get();
              if (resp.status != service::Response::Status::kOk)
                return fail("qos serve failed: " + resp.reason, witness);
              if (resp.result != ref_resp.result)
                return fail("qos-on bytes diverge from qos-off bytes",
                            witness);
              if (shed_seen) retried_bytes = resp.result;
              // Not shed yet: this accept drained the bucket — the next
              // immediate submit sheds.
            }
            engine.stop();
            if (!shed_seen)
              return fail("token bucket never shed across 200 submits",
                          witness);
            if (retried_bytes != ref_resp.result)
              return fail("shed-then-retried bytes diverge from unshed run",
                          witness);
            return std::nullopt;
          }};
}

Property planted_bug_property() {
  return {"planted-bug", [](Rng& rng) -> std::optional<Failure> {
            Graph g = arbitrary_graph(rng);
            const auto check = [](const Graph& c) {
              return check_planted_bug(c);
            };
            if (!guarded([&] { return check(g); })) return std::nullopt;
            return shrink_graph_failure(std::move(g), check);
          }};
}

}  // namespace

std::vector<Property> default_properties(const FuzzOptions& opts) {
  std::vector<Property> props;
  props.push_back(mis_differential_property());
  props.push_back(cf_differential_property());
  props.push_back(instance_property(
      "correspondence-roundtrip", opts.family,
      [](const HyperInstance& inst, std::uint64_t seed) {
        return check_correspondence(inst, seed);
      }));
  const std::string oracle = opts.oracle;
  props.push_back(instance_property(
      "reduction-solves", opts.family,
      [oracle](const HyperInstance& inst, std::uint64_t seed) {
        return check_reduction(inst, seed, oracle);
      }));
  props.push_back(service_differential_property());
  props.push_back(hash_sensitivity_property());
  props.push_back(net_frame_property());
  props.push_back(mix64_avalanche_property());
  props.push_back(shard_ring_property());
  props.push_back(shard_failover_property());
  props.push_back(qos_fairness_property());
  props.push_back(qos_shed_purity_property());
  props.push_back(trace_propagation_property());
  props.push_back(solver_kernel_lift_property());
  props.push_back(mis_repair_property(opts));
  if (opts.plant_bug) props.push_back(planted_bug_property());
  return props;
}

std::string reproducer(const std::string& property, std::uint64_t iter_seed,
                       const std::string& family, const std::string& oracle) {
  std::ostringstream os;
  os << "pslocal_fuzz --property=" << property << " --seed=" << iter_seed
     << " --iters=1";
  if (!family.empty()) os << " --family=" << family;
  if (!oracle.empty()) os << " --oracle=" << oracle;
  return os.str();
}

std::size_t FuzzReport::failure_count() const {
  std::size_t count = 0;
  for (const auto& out : outcomes)
    if (out.failure.has_value()) ++count;
  return count;
}

FuzzReport run_properties(const std::vector<Property>& props,
                          const FuzzOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (opts.time_budget_ms <= 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    return elapsed.count() >= opts.time_budget_ms;
  };

  FuzzReport report;
  for (const Property& prop : props) {
    if (!opts.only.empty() && prop.name != opts.only) continue;
    PropertyOutcome outcome;
    outcome.name = prop.name;
    for (std::size_t iter = 0; iter < opts.iters; ++iter) {
      if (out_of_time()) break;
      const std::uint64_t s = iteration_seed(opts.seed, iter);
      // Splitting by the property name decorrelates the input streams of
      // different properties under one base seed.
      Rng rng = Rng(s).split(fnv1a64(prop.name));
      auto failure = prop.run(rng);
      ++outcome.iterations;
      if (failure.has_value()) {
        outcome.failure = std::move(failure);
        outcome.fail_seed = s;
        outcome.reproducer =
            reproducer(prop.name, s, opts.family, opts.oracle);
        break;
      }
    }
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

std::string report_json(const FuzzReport& report, const FuzzOptions& opts) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"format\": \"pslocal-fuzz-report\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"seed\": \"" << opts.seed << "\",\n";
  os << "  \"iters\": " << opts.iters << ",\n";
  os << "  \"plant_bug\": " << (opts.plant_bug ? "true" : "false") << ",\n";
  os << "  \"properties\": [\n";
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const PropertyOutcome& out = report.outcomes[i];
    os << "    {\"name\": \"" << json::escape(out.name)
       << "\", \"iterations\": " << out.iterations << ", \"failed\": "
       << (out.failure.has_value() ? "true" : "false");
    if (out.failure.has_value()) {
      os << ", \"seed\": \"" << out.fail_seed << "\"";
      os << ", \"message\": \"" << json::escape(out.failure->message) << "\"";
      os << ", \"counterexample\": \""
         << json::escape(out.failure->counterexample) << "\"";
      os << ", \"shrink_attempts\": " << out.failure->shrink_attempts;
      os << ", \"shrink_accepted\": " << out.failure->shrink_accepted;
      os << ", \"reproducer\": \"" << json::escape(out.reproducer) << "\"";
    }
    os << "}" << (i + 1 < report.outcomes.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"failures\": " << report.failure_count() << ",\n";
  os << "  \"passed\": " << (report.passed() ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace pslocal::qc
