#include "qc/property.hpp"

#include <chrono>
#include <sstream>

#include "qc/fault.hpp"
#include "qc/gen.hpp"
#include "qc/oracles.hpp"
#include "qc/shrink.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"

namespace pslocal::qc {

namespace {

/// Run a checker, converting a thrown exception (ContractViolation from a
/// solver, say) into a failure message — a crash is a counterexample too,
/// and the shrinker needs the predicate to be total.
template <typename Fn>
std::optional<std::string> guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  }
}

std::string describe_requests(const service::TraceParams& params,
                              const FaultPlan& plan,
                              const std::vector<service::Request>& requests) {
  std::ostringstream os;
  os << "trace seed=" << params.seed << " plan{queue=" << plan.queue_capacity
     << " burst=" << plan.burst << " cache=" << plan.cache_entries
     << (plan.disable_cache ? " cache-off" : "")
     << (plan.shuffle_scheduler ? " shuffled" : "") << "} requests=[";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i > 0) os << " ";
    os << requests[i].id << ":" << service::kind_name(requests[i].kind);
  }
  os << "]";
  return os.str();
}

Failure make_failure(std::string message, std::string counterexample,
                     const ShrinkLog& log) {
  Failure f;
  f.message = std::move(message);
  f.counterexample = std::move(counterexample);
  f.shrink_attempts = log.attempts;
  f.shrink_accepted = log.accepted;
  return f;
}

/// Shrink a failing graph against `check` and build the Failure from the
/// minimal witness.
Failure shrink_graph_failure(
    Graph g, const std::function<std::optional<std::string>(const Graph&)>&
                 check) {
  ShrinkLog log;
  const Graph minimal = shrink_graph(
      std::move(g),
      [&check](const Graph& c) { return guarded([&] { return check(c); }).has_value(); },
      &log);
  const auto msg = guarded([&] { return check(minimal); });
  return make_failure(msg.value_or("failure vanished on the minimal witness"),
                      describe(minimal), log);
}

Property mis_differential_property() {
  return {"mis-differential", [](Rng& rng) -> std::optional<Failure> {
            const std::uint64_t solver_seed = rng.next_u64();
            Graph g = arbitrary_graph(rng);
            const auto check = [solver_seed](const Graph& c) {
              return check_mis_differential(c, solver_seed);
            };
            if (!guarded([&] { return check(g); })) return std::nullopt;
            return shrink_graph_failure(std::move(g), check);
          }};
}

Property cf_differential_property() {
  return {"cf-differential", [](Rng& rng) -> std::optional<Failure> {
            Hypergraph h = arbitrary_tiny_hypergraph(rng);
            const auto check = [](const Hypergraph& c) {
              return check_cf_differential(c);
            };
            if (!guarded([&] { return check(h); })) return std::nullopt;
            ShrinkLog log;
            const Hypergraph minimal = shrink_hypergraph(
                std::move(h),
                [&check](const Hypergraph& c) {
                  return guarded([&] { return check(c); }).has_value();
                },
                /*edges_only=*/false, &log);
            const auto msg = guarded([&] { return check(minimal); });
            return make_failure(
                msg.value_or("failure vanished on the minimal witness"),
                describe(minimal), log);
          }};
}

/// Shared scaffold for the two witness-carrying instance properties:
/// generate a named-family instance, check, and shrink EDGES ONLY so the
/// CF k-colorability certificate stays valid on every candidate.
Property instance_property(
    std::string name, std::string force_family,
    std::function<std::optional<std::string>(const HyperInstance&,
                                             std::uint64_t)>
        check) {
  return {std::move(name),
          [force_family, check](Rng& rng) -> std::optional<Failure> {
            const std::uint64_t check_seed = rng.next_u64();
            HyperInstance inst = arbitrary_instance(rng, force_family);
            const auto run = [&check, check_seed](const HyperInstance& c) {
              return check(c, check_seed);
            };
            if (!guarded([&] { return run(inst); })) return std::nullopt;
            ShrinkLog log;
            HyperInstance candidate = inst;
            candidate.hypergraph = shrink_hypergraph(
                std::move(inst.hypergraph),
                [&](const Hypergraph& h) {
                  HyperInstance probe = candidate;
                  probe.hypergraph = h;
                  return guarded([&] { return run(probe); }).has_value();
                },
                /*edges_only=*/true, &log);
            const auto msg = guarded([&] { return run(candidate); });
            std::ostringstream witness;
            witness << "family=" << candidate.family
                    << " seed=" << candidate.seed << " k=" << candidate.k
                    << " " << describe(candidate.hypergraph);
            return make_failure(
                msg.value_or("failure vanished on the minimal witness"),
                witness.str(), log);
          }};
}

Property service_differential_property() {
  return {"service-differential", [](Rng& rng) -> std::optional<Failure> {
            const service::TraceParams params = arbitrary_trace_params(rng);
            const FaultPlan plan = arbitrary_fault_plan(rng);
            const service::Trace trace = service::generate_trace(params);
            const auto failing = [&plan, &trace](
                                     const std::vector<service::Request>& rs) {
              service::Trace sub;
              sub.instances = trace.instances;
              sub.instance_hashes = trace.instance_hashes;
              sub.requests = rs;
              const FaultReport r = run_fault_plan(plan, sub);
              return !r.ok();
            };
            const FaultReport report = run_fault_plan(plan, trace);
            if (report.ok()) return std::nullopt;
            ShrinkLog log;
            const auto minimal = shrink_requests(
                trace.requests,
                [&failing](const std::vector<service::Request>& rs) {
                  bool fails = false;
                  (void)guarded([&]() -> std::optional<std::string> {
                    fails = failing(rs);
                    return std::nullopt;
                  });
                  return fails;
                },
                &log);
            service::Trace sub;
            sub.instances = trace.instances;
            sub.instance_hashes = trace.instance_hashes;
            sub.requests = minimal;
            const FaultReport final_report = run_fault_plan(plan, sub);
            return make_failure(final_report.error.empty()
                                    ? report.error
                                    : final_report.error,
                                describe_requests(params, plan, minimal), log);
          }};
}

Property hash_sensitivity_property() {
  return {"hash-sensitivity", [](Rng& rng) -> std::optional<Failure> {
            // Payload streams differing in exactly one field must digest
            // differently (collision smoke over the canonical encoding).
            const std::size_t fields = 1 + rng.next_below(8);
            std::vector<std::uint64_t> payload(fields);
            for (auto& w : payload) w = rng.next_u64();
            const std::size_t flip = rng.next_below(fields);
            const std::uint64_t delta = 1ULL << rng.next_below(64);
            Fnv1a64 a, b;
            for (std::size_t i = 0; i < fields; ++i) {
              a.update_u64(payload[i]);
              b.update_u64(i == flip ? payload[i] ^ delta : payload[i]);
            }
            if (a.digest() == b.digest()) {
              Failure f;
              f.message = "one-field flip collided under Fnv1a64";
              std::ostringstream os;
              os << "fields=" << fields << " flip=" << flip
                 << " delta=" << delta;
              f.counterexample = os.str();
              return f;
            }
            // hex64 must round-trip any word.
            const std::uint64_t word = rng.next_u64();
            if (parse_hex64(hex64(word)) != word) {
              Failure f;
              f.message = "hex64 round trip failed";
              f.counterexample = hex64(word);
              return f;
            }
            return std::nullopt;
          }};
}

Property planted_bug_property() {
  return {"planted-bug", [](Rng& rng) -> std::optional<Failure> {
            Graph g = arbitrary_graph(rng);
            const auto check = [](const Graph& c) {
              return check_planted_bug(c);
            };
            if (!guarded([&] { return check(g); })) return std::nullopt;
            return shrink_graph_failure(std::move(g), check);
          }};
}

}  // namespace

std::vector<Property> default_properties(const FuzzOptions& opts) {
  std::vector<Property> props;
  props.push_back(mis_differential_property());
  props.push_back(cf_differential_property());
  props.push_back(instance_property(
      "correspondence-roundtrip", opts.family,
      [](const HyperInstance& inst, std::uint64_t seed) {
        return check_correspondence(inst, seed);
      }));
  const std::string oracle = opts.oracle;
  props.push_back(instance_property(
      "reduction-solves", opts.family,
      [oracle](const HyperInstance& inst, std::uint64_t seed) {
        return check_reduction(inst, seed, oracle);
      }));
  props.push_back(service_differential_property());
  props.push_back(hash_sensitivity_property());
  if (opts.plant_bug) props.push_back(planted_bug_property());
  return props;
}

std::string reproducer(const std::string& property, std::uint64_t iter_seed,
                       const std::string& family, const std::string& oracle) {
  std::ostringstream os;
  os << "pslocal_fuzz --property=" << property << " --seed=" << iter_seed
     << " --iters=1";
  if (!family.empty()) os << " --family=" << family;
  if (!oracle.empty()) os << " --oracle=" << oracle;
  return os.str();
}

std::size_t FuzzReport::failure_count() const {
  std::size_t count = 0;
  for (const auto& out : outcomes)
    if (out.failure.has_value()) ++count;
  return count;
}

FuzzReport run_properties(const std::vector<Property>& props,
                          const FuzzOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (opts.time_budget_ms <= 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    return elapsed.count() >= opts.time_budget_ms;
  };

  FuzzReport report;
  for (const Property& prop : props) {
    if (!opts.only.empty() && prop.name != opts.only) continue;
    PropertyOutcome outcome;
    outcome.name = prop.name;
    for (std::size_t iter = 0; iter < opts.iters; ++iter) {
      if (out_of_time()) break;
      const std::uint64_t s = iteration_seed(opts.seed, iter);
      // Splitting by the property name decorrelates the input streams of
      // different properties under one base seed.
      Rng rng = Rng(s).split(fnv1a64(prop.name));
      auto failure = prop.run(rng);
      ++outcome.iterations;
      if (failure.has_value()) {
        outcome.failure = std::move(failure);
        outcome.fail_seed = s;
        outcome.reproducer =
            reproducer(prop.name, s, opts.family, opts.oracle);
        break;
      }
    }
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

std::string report_json(const FuzzReport& report, const FuzzOptions& opts) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"format\": \"pslocal-fuzz-report\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"seed\": \"" << opts.seed << "\",\n";
  os << "  \"iters\": " << opts.iters << ",\n";
  os << "  \"plant_bug\": " << (opts.plant_bug ? "true" : "false") << ",\n";
  os << "  \"properties\": [\n";
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const PropertyOutcome& out = report.outcomes[i];
    os << "    {\"name\": \"" << json::escape(out.name)
       << "\", \"iterations\": " << out.iterations << ", \"failed\": "
       << (out.failure.has_value() ? "true" : "false");
    if (out.failure.has_value()) {
      os << ", \"seed\": \"" << out.fail_seed << "\"";
      os << ", \"message\": \"" << json::escape(out.failure->message) << "\"";
      os << ", \"counterexample\": \""
         << json::escape(out.failure->counterexample) << "\"";
      os << ", \"shrink_attempts\": " << out.failure->shrink_attempts;
      os << ", \"shrink_accepted\": " << out.failure->shrink_accepted;
      os << ", \"reproducer\": \"" << json::escape(out.reproducer) << "\"";
    }
    os << "}" << (i + 1 < report.outcomes.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"failures\": " << report.failure_count() << ",\n";
  os << "  \"passed\": " << (report.passed() ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace pslocal::qc
