#include "qc/oracles.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "coloring/cf_baselines.hpp"
#include "coloring/exact_cf.hpp"
#include "core/conflict_graph.hpp"
#include "core/correspondence.hpp"
#include "core/dynamic_conflict_graph.hpp"
#include "core/reduction.hpp"
#include "local/luby_mis.hpp"
#include "mis/degraded_oracle.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/greedy_maxis.hpp"
#include "mis/independent_set.hpp"
#include "mis/kernelization.hpp"
#include "mis/repair.hpp"
#include "solver/solver.hpp"
#include "util/hash.hpp"

namespace pslocal::qc {

namespace {

/// Node budget for exact references inside checkers: generous for the
/// tiny instances the generators emit, bounded so a pathological shrink
/// candidate cannot hang the harness.
constexpr std::uint64_t kExactBudget = 2'000'000;

std::optional<std::string> fail(const std::string& msg) { return msg; }

/// Triples of the conflict graph G_k grow as sum_e |e| * k; the exact
/// solver inside the degraded oracle is only exercised below this size
/// (the scale experiment E4 runs it at).
std::size_t triple_estimate(const Hypergraph& h, std::size_t k) {
  std::size_t total = 0;
  for (EdgeId e = 0; e < h.edge_count(); ++e) total += h.edge_size(e) * k;
  return total;
}

}  // namespace

std::optional<std::string> check_mis_differential(const Graph& g,
                                                  std::uint64_t seed) {
  const auto mindeg = greedy_min_degree_maxis(g);
  if (!is_maximal_independent_set(g, mindeg))
    return fail("greedy_min_degree_maxis output is not a maximal IS");

  const auto clique = clique_cover_greedy_maxis(g);
  if (!is_independent_set(g, clique))
    return fail("clique_cover_greedy_maxis output is not an IS");

  RandomGreedyOracle random_oracle(seed);
  const auto random_is = random_oracle.solve(g);
  if (!is_maximal_independent_set(g, random_is))
    return fail("RandomGreedyOracle output is not a maximal IS");

  const LubyResult luby = luby_mis(g, seed);
  if (!luby.completed) return fail("luby_mis did not complete");
  if (!is_maximal_independent_set(g, luby.independent_set))
    return fail("luby_mis output is not a maximal IS");

  const ExactMaxIS exact(kExactBudget);
  const auto ex = exact.solve(g);
  if (!is_independent_set(g, ex.set))
    return fail("ExactMaxIS output is not an IS");
  if (!ex.proven_optimal) return std::nullopt;  // budget hit: skip bounds

  const std::size_t alpha = ex.set.size();
  const std::size_t delta = g.vertex_count() == 0 ? 0 : g.max_degree();
  const auto check_size = [&](const std::vector<VertexId>& is,
                              const char* name,
                              bool is_maximal) -> std::optional<std::string> {
    if (is.size() > alpha) {
      std::ostringstream os;
      os << name << " exceeds alpha: " << is.size() << " > " << alpha;
      return os.str();
    }
    // Any MIS is a (Delta+1)-approximation of MaxIS.
    if (is_maximal && is.size() * (delta + 1) < alpha) {
      std::ostringstream os;
      os << name << " below the (Delta+1)-approximation bound: |I|="
         << is.size() << " alpha=" << alpha << " Delta=" << delta;
      return os.str();
    }
    return std::nullopt;
  };
  if (auto f = check_size(mindeg, "greedy-mindeg", true)) return f;
  if (auto f = check_size(clique, "greedy-clique", false)) return f;
  if (auto f = check_size(random_is, "greedy-random", true)) return f;
  if (auto f = check_size(luby.independent_set, "luby", true)) return f;

  // Halldórsson–Radhakrishnan: min-degree greedy is a (Delta+2)/3
  // approximation, i.e. 3 alpha <= |greedy| (Delta+2).  The factor is
  // clamped at 1 (for Delta <= 1 greedy is exactly optimal).
  const std::size_t hr = std::max<std::size_t>(3, delta + 2);
  if (3 * alpha > mindeg.size() * hr)
    return fail("greedy-mindeg below the (Delta+2)/3 approximation bound");

  // The degraded oracle realizes |I| >= alpha / lambda with an exact
  // inner solve; its output must stay independent and meet the floor.
  for (const double lambda : {1.0, 2.0}) {
    ControlledLambdaOracle degraded(lambda, kExactBudget);
    const auto is = degraded.solve(g);
    if (!is_independent_set(g, is))
      return fail("ControlledLambdaOracle output is not an IS");
    if (static_cast<double>(is.size()) * lambda + 1e-9 <
        static_cast<double>(alpha))
      return fail("ControlledLambdaOracle below its lambda guarantee");
  }

  // Third exact leg: the CNF backend (src/solver/) must agree with
  // branch-and-bound to the vertex count whenever both complete, and can
  // never exceed alpha even when budget-cut.
  {
    const auto backend = solver::SolverFactory::instance().make("dpll");
    solver::SolverOptions options;
    options.seed = seed;
    options.decision_budget = kExactBudget;
    const auto cnf = backend->solve_maxis(g, options);
    if (!is_independent_set(g, cnf.independent_set))
      return fail("cnf-dpll output is not an IS");
    if (cnf.independent_set.size() > alpha) {
      std::ostringstream os;
      os << "cnf-dpll exceeds alpha: " << cnf.independent_set.size() << " > "
         << alpha;
      return os.str();
    }
    if (cnf.proven_optimal && cnf.independent_set.size() != alpha) {
      std::ostringstream os;
      os << "cnf-dpll proved a wrong optimum: " << cnf.independent_set.size()
         << " != alpha " << alpha;
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_solver_kernel_lift(const Graph& g,
                                                    std::uint64_t seed) {
  const ExactMaxIS exact(kExactBudget);
  const auto direct = exact.solve(g);
  if (!direct.proven_optimal) return std::nullopt;  // budget hit: skip
  const std::size_t alpha = direct.set.size();

  // The pruner's alpha-preservation invariant, checked exactly.
  const MaxISKernel kernel = kernelize_maxis(g);
  const auto kernel_exact = exact.solve(kernel.kernel);
  if (!kernel_exact.proven_optimal) return std::nullopt;
  if (kernel.forced.size() + kernel_exact.set.size() != alpha) {
    std::ostringstream os;
    os << "kernelize_maxis breaks alpha: forced " << kernel.forced.size()
       << " + alpha(kernel) " << kernel_exact.set.size() << " != alpha "
       << alpha;
    return os.str();
  }

  // Kernel-then-solve-then-lift through the CNF backend must land on
  // alpha exactly — and so must the unpruned encode, so a disagreement
  // isolates the pruner.
  const auto backend = solver::SolverFactory::instance().make("dpll");
  solver::SolverOptions options;
  options.seed = seed;
  options.decision_budget = kExactBudget;
  for (const bool kernelize : {true, false}) {
    options.kernelize = kernelize;
    const auto res = backend->solve_maxis(g, options);
    if (!is_independent_set(g, res.independent_set))
      return fail(kernelize ? "cnf-dpll (pruned) output is not an IS"
                            : "cnf-dpll (unpruned) output is not an IS");
    if (res.independent_set.size() > alpha)
      return fail(kernelize ? "cnf-dpll (pruned) exceeds alpha"
                            : "cnf-dpll (unpruned) exceeds alpha");
    if (res.proven_optimal && res.independent_set.size() != alpha) {
      std::ostringstream os;
      os << "cnf-dpll (" << (kernelize ? "pruned" : "unpruned")
         << ") proved " << res.independent_set.size() << " != alpha "
         << alpha;
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_cf_differential(const Hypergraph& h) {
  const GreedyCfResult greedy = greedy_cf_coloring(h);
  if (!is_conflict_free(h, greedy.coloring))
    return fail("greedy_cf_coloring output is not conflict-free");
  if (cf_color_count(greedy.coloring) != greedy.colors_used)
    return fail("greedy_cf_coloring colors_used miscounts its palette");

  const CfMulticoloring fresh = fresh_color_baseline(h);
  if (!is_conflict_free(h, fresh))
    return fail("fresh_color_baseline output is not conflict-free");

  if (h.edge_count() > 0) {
    const std::size_t max_k = std::max<std::size_t>(greedy.colors_used, 1);
    const ExactCfResult exact = exact_min_cf_colors(h, max_k, kExactBudget);
    if (!exact.budget_exhausted) {
      if (!exact.found)
        return fail("exact_min_cf_colors found no coloring within the "
                    "greedy palette");
      if (!is_conflict_free(h, exact.coloring))
        return fail("exact_min_cf_colors witness is not conflict-free");
      if (exact.colors > greedy.colors_used)
        return fail("exact CF chromatic number exceeds the greedy palette");
      if (exact.colors > 1) {
        const ExactCfResult fewer =
            exact_min_cf_colors(h, exact.colors - 1, kExactBudget);
        if (!fewer.budget_exhausted && fewer.found)
          return fail("exact_min_cf_colors result is not minimal");
      }
    }
  }

  if (is_interval_hypergraph(h)) {
    const CfColoring dyadic = dyadic_interval_cf_coloring(h.vertex_count());
    if (!is_conflict_free(h, dyadic))
      return fail("dyadic coloring not conflict-free on an interval "
                  "hypergraph");
  }
  return std::nullopt;
}

std::optional<std::string> check_correspondence(const HyperInstance& inst,
                                                std::uint64_t seed) {
  const Hypergraph& h = inst.hypergraph;
  const ConflictGraph cg(h, inst.k);

  // Lemma 2.1 a) on the witness coloring.
  const LemmaAReport a = check_lemma_a(cg, inst.witness);
  if (!a.applicable)
    return fail("witness coloring is not a CF k-coloring (lemma A "
                "precondition)");
  if (!a.independent) return fail("I_f of the witness is not independent");
  if (!a.attains_maximum)
    return fail("I_f of the witness does not attain alpha = m");

  // Round trip a) -> b): the induced coloring of I_f is total on happy
  // edges, i.e. conflict-free again.
  const auto i_f = is_from_coloring(cg, inst.witness);
  if (i_f.size() != h.edge_count())
    return fail("is_from_coloring did not pick one triple per edge");
  const InducedColoring induced = coloring_from_is(cg, i_f);
  if (!induced.well_defined)
    return fail("coloring_from_is of a valid IS is not well defined");
  if (!is_conflict_free(h, induced.coloring))
    return fail("round-tripped coloring f_{I_f} is not conflict-free");
  const LemmaBReport b_wit = check_lemma_b(cg, i_f);
  if (!b_wit.independent || !b_wit.well_defined ||
      !b_wit.happy_at_least_is_size)
    return fail("lemma B clauses fail on I_f");

  // Lemma 2.1 b) on an arbitrary oracle IS.
  RandomGreedyOracle oracle(seed);
  const auto is = oracle.solve(cg.graph());
  const LemmaBReport b = check_lemma_b(cg, is);
  if (!b.independent) return fail("oracle IS is not independent on G_k");
  if (!b.well_defined) return fail("f_I of the oracle IS is not well defined");
  if (!b.happy_at_least_is_size)
    return fail("fewer happy edges than |I| (lemma B violated)");
  if (is.size() > cg.independence_upper_bound())
    return fail("oracle IS exceeds the alpha upper bound m");
  return std::nullopt;
}

std::optional<std::string> check_reduction(const HyperInstance& inst,
                                           std::uint64_t seed,
                                           const std::string& force_oracle,
                                           double force_lambda) {
  Rng rng(seed);
  std::string kind = force_oracle;
  if (kind.empty()) {
    static const char* kKinds[] = {"greedy-mindeg", "greedy-clique",
                                   "greedy-random", "luby", "degraded"};
    kind = kKinds[rng.next_below(5)];
    // The degraded oracle solves G_k exactly each phase; keep it to the
    // instance sizes E4 runs it at.
    if (kind == "degraded" && triple_estimate(inst.hypergraph, inst.k) > 300)
      kind = "greedy-random";
  }

  std::unique_ptr<MaxISOracle> oracle;
  if (kind == "greedy-mindeg") {
    oracle = std::make_unique<GreedyMinDegreeOracle>();
  } else if (kind == "greedy-clique") {
    oracle = std::make_unique<CliqueCoverGreedyOracle>();
  } else if (kind == "greedy-random") {
    oracle = std::make_unique<RandomGreedyOracle>(rng.next_u64());
  } else if (kind == "luby") {
    oracle = std::make_unique<LubyOracle>(rng.next_u64());
  } else if (kind == "degraded") {
    const double lambda =
        force_lambda > 1.0 ? force_lambda : 1.5 + 0.5 * rng.next_below(3);
    oracle = std::make_unique<ControlledLambdaOracle>(lambda);
  } else {
    return fail("unknown oracle kind " + kind);
  }

  ReductionOptions opts;
  opts.k = inst.k;
  opts.verify_phases = true;
  const ReductionResult res =
      cf_multicoloring_via_maxis(inst.hypergraph, *oracle, opts);
  std::ostringstream tag;
  tag << "reduction[" << kind << ", family=" << inst.family << "] ";
  if (!res.success) return fail(tag.str() + "did not succeed");
  if (!is_conflict_free(inst.hypergraph, res.coloring))
    return fail(tag.str() + "final multicoloring is not conflict-free");
  if (res.colors_used > res.palette_bound)
    return fail(tag.str() + "used more colors than the k*rho accounting");
  if (res.coloring.max_color() > inst.k * res.phases)
    return fail(tag.str() + "palette offsets exceed k * phases");
  if (res.rho_bound > 0 && !res.within_rho)
    return fail(tag.str() + "exceeded the phase bound rho");
  return std::nullopt;
}

std::optional<std::string> check_mis_repair_vs_recompute(
    const MutationScript& ms, std::uint64_t seed,
    const std::string& force_oracle) {
  Rng rng(seed);
  std::string leg = force_oracle;
  if (leg.empty()) {
    static const char* kLegs[] = {"greedy-mindeg", "luby", "exact"};
    leg = kLegs[rng.next_below(3)];
  }
  std::ostringstream tag;
  tag << "mis_repair_vs_recompute[" << leg << ", family=" << ms.family
      << "] ";

  const auto invalid = validate_script(ms.base.hypergraph, ms.script);
  if (invalid.has_value())
    return fail(tag.str() + "generator emitted an invalid script: " +
                *invalid);

  DynamicConflictGraph dyn(ms.base.hypergraph, ms.base.k);
  const std::uint64_t leg_seed = rng.next_u64();

  // Initial MIS from the chosen leg.  Every leg yields a *maximal* set:
  // greedy by construction, Luby at quiescence, exact extended if the
  // budget truncated the search.
  const auto solve_leg =
      [&](const Graph& g) -> std::optional<std::vector<VertexId>> {
    std::vector<VertexId> out;
    if (leg == "greedy-mindeg") {
      out = greedy_min_degree_maxis(g);
    } else if (leg == "luby") {
      const LubyResult r = luby_mis(g, leg_seed);
      if (!r.completed) return std::nullopt;
      out = r.independent_set;
    } else {
      const ExactMaxIS exact(kExactBudget);
      out = extend_to_maximal(g, exact.solve(g).set);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto seeded = solve_leg(dyn.snapshot());
  if (!seeded.has_value()) return fail(tag.str() + "initial leg failed");
  std::vector<VertexId> mis = std::move(*seeded);

  for (std::size_t step = 0; step < ms.script.size(); ++step) {
    const Mutation& mut = ms.script[step];
    const auto delta = dyn.apply(mut);
    const auto survivors = remap_surviving(mis, delta.remap);
    const auto rep = repair_mis(dyn, survivors, delta.dirty);

    std::ostringstream where;
    where << tag.str() << "step " << step << " (" << pslocal::describe(mut)
          << "): ";
    const auto step_fail = [&](const std::string& what) {
      return fail(where.str() + what + "; " + describe(ms));
    };

    // (a) Patched G_k must be bit-identical to a from-scratch rebuild.
    const ConflictGraph rebuilt(dyn.hypergraph(), dyn.k());
    if (dyn.snapshot() != rebuilt.graph())
      return step_fail("patched G_k differs from rebuilt conflict graph");
    if (dyn.graph_hash() != hash_graph(rebuilt.graph()))
      return step_fail("patched graph hash differs from rebuilt hash");

    // (b) Repair output must be a maximal IS of the rebuilt graph.
    if (!is_independent_set(rebuilt.graph(), rep.mis))
      return step_fail("repaired set is not independent");
    if (!is_maximal_independent_set(rebuilt.graph(), rep.mis))
      return step_fail("repaired set is not maximal");

    // (c) Locality: changes confined to the reported repair ball.
    std::vector<VertexId> changed;
    std::set_symmetric_difference(survivors.begin(), survivors.end(),
                                  rep.mis.begin(), rep.mis.end(),
                                  std::back_inserter(changed));
    for (const VertexId v : changed)
      if (!std::binary_search(rep.ball.begin(), rep.ball.end(), v))
        return step_fail("membership changed outside the repair ball");

    // (d) Exact leg: repair can never beat the recomputed optimum.
    if (leg == "exact") {
      const ExactMaxIS exact(kExactBudget);
      const auto ex = exact.solve(rebuilt.graph());
      if (ex.proven_optimal && rep.mis.size() > ex.set.size())
        return step_fail("repaired set exceeds the recomputed exact alpha");
    }
    mis = rep.mis;
  }
  return std::nullopt;
}

std::vector<VertexId> buggy_greedy_mis(const Graph& g) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    bool blocked = false;
    // BUG (planted, flag-gated): the independence re-check is off by one
    // — it never tests v against the most recently chosen vertex, so a
    // vertex adjacent only to that one slips in.
    for (std::size_t i = 0; i + 1 < out.size(); ++i)
      if (g.has_edge(out[i], v)) blocked = true;
    if (!blocked) out.push_back(v);
  }
  return out;
}

std::optional<std::string> check_planted_bug(const Graph& g) {
  const auto is = buggy_greedy_mis(g);
  if (!is_independent_set(g, is))
    return fail("buggy_greedy_mis returned a non-independent set");
  return std::nullopt;
}

}  // namespace pslocal::qc
