// The property runner: seed-deterministic fuzz loop with shrinking.
//
// A Property is (name, one-iteration closure).  The runner derives an
// iteration seed s = base_seed + iteration, builds the iteration's
// private Rng by splitting s with the property name, runs the closure,
// and on failure records the already-shrunk counterexample plus a
// one-line reproducer command.  Because iteration 0 under base seed s
// and iteration t under base seed s+t see identical Rng state, the
// printed `pslocal_fuzz --property=<p> --seed=<s+t> --iters=1` replays
// the failing iteration exactly.
//
// With time_budget_ms == 0 a run is a pure function of FuzzOptions: the
// JSON report carries no timing and is byte-identical across runs and
// thread counts (the fuzz-smoke CI job diffs two runs).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pslocal::qc {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iters = 200;          // per property
  std::int64_t time_budget_ms = 0;  // 0 = unbounded (deterministic mode)
  std::string only;    // run a single property by name ("" = all)
  std::string family;  // pin the hypergraph family ("" = draw randomly)
  std::string oracle;  // pin the reduction oracle ("" = draw randomly)
  bool plant_bug = false;  // enable the flag-gated buggy solver property
};

/// A shrunk failing iteration.
struct Failure {
  std::string message;         // first violated invariant
  std::string counterexample;  // printable 1-minimal witness
  std::size_t shrink_attempts = 0;
  std::size_t shrink_accepted = 0;
};

struct Property {
  std::string name;
  std::function<std::optional<Failure>(Rng&)> run;
};

/// The standing property set (differential oracles over all three input
/// domains plus fault injection).  opts pins family/oracle choices and
/// gates the planted-bug property.
[[nodiscard]] std::vector<Property> default_properties(
    const FuzzOptions& opts);

/// The seed of iteration `iter` under `base` (iteration 0 == base).
[[nodiscard]] inline std::uint64_t iteration_seed(std::uint64_t base,
                                                  std::size_t iter) {
  return base + iter;
}

/// One-line replay command for a failing iteration seed.
[[nodiscard]] std::string reproducer(const std::string& property,
                                     std::uint64_t iter_seed,
                                     const std::string& family = "",
                                     const std::string& oracle = "");

struct PropertyOutcome {
  std::string name;
  std::size_t iterations = 0;  // executed; stops at the first failure
  std::optional<Failure> failure;
  std::uint64_t fail_seed = 0;  // iteration seed of the failure
  std::string reproducer;       // replay command (set on failure)
};

struct FuzzReport {
  std::vector<PropertyOutcome> outcomes;
  [[nodiscard]] std::size_t failure_count() const;
  [[nodiscard]] bool passed() const { return failure_count() == 0; }
};

/// Run every property for opts.iters iterations (or until the time
/// budget runs out), stopping each property at its first failure.
[[nodiscard]] FuzzReport run_properties(const std::vector<Property>& props,
                                        const FuzzOptions& opts);

/// Canonical JSON encoding of a report — deterministic, no timing.
[[nodiscard]] std::string report_json(const FuzzReport& report,
                                      const FuzzOptions& opts);

}  // namespace pslocal::qc
