// Differential oracles: independent cross-checks between solvers.
//
// Each checker returns nullopt when every invariant holds, or a
// human-readable description of the first violated clause.  The targets
// come from the paper's object zoo:
//
//  * MIS family   — exact branch-and-bound vs. min-degree greedy vs.
//                   clique-cover greedy vs. random-order greedy vs. Luby,
//                   with the published approximation guarantees asserted
//                   whenever the exact solver proves optimality;
//  * CF family    — exact backtracking CF chromatic number vs. greedy CF
//                   vs. the fresh-color and dyadic baselines;
//  * Lemma 2.1    — both correspondence directions round-tripped through
//                   the conflict graph, clause by clause;
//  * Theorem 1.1  — the reduction under every oracle, including the
//                   deliberately degraded λ-oracle (mis/degraded_oracle),
//                   against the phase bound ρ = ceil(λ ln m) + 1.
//
// The checkers are pure functions of their inputs (random choices come
// from explicit seeds), so they double as shrinking predicates.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "qc/gen.hpp"

namespace pslocal::qc {

/// Cross-check every MIS solver on g (validity, maximality where
/// guaranteed, sizes against exact α and the published approximation
/// factors).  `seed` drives the randomized solvers.
[[nodiscard]] std::optional<std::string> check_mis_differential(
    const Graph& g, std::uint64_t seed);

/// Kernelization-as-pruner coverage: kernel-then-solve-then-lift through
/// the CNF exact backend (src/solver/) must equal the direct exact solve
/// — both with and without the pruner — and the kernel invariant
/// alpha(G) = |forced| + alpha(kernel) must hold exactly.  Skips (reports
/// nullopt) only when the exact reference itself exhausts its budget.
[[nodiscard]] std::optional<std::string> check_solver_kernel_lift(
    const Graph& g, std::uint64_t seed);

/// Cross-check the CF coloring algorithms on a tiny hypergraph against
/// the exact CF chromatic number.
[[nodiscard]] std::optional<std::string> check_cf_differential(
    const Hypergraph& h);

/// Verify both directions of Lemma 2.1 on inst's conflict graph: clause
/// checks for the witness coloring (a), a random-oracle IS (b), and the
/// a→b round trip coloring_from_is(is_from_coloring(witness)).
[[nodiscard]] std::optional<std::string> check_correspondence(
    const HyperInstance& inst, std::uint64_t seed);

/// Run the Theorem 1.1 reduction on inst with a seed-chosen oracle
/// (greedy/random/Luby, or the degraded λ-oracle when force_lambda > 1 or
/// the seed picks it) and verify success, conflict-freeness, the palette
/// accounting, and — when λ is known — the phase bound.  When
/// `force_oracle` is non-empty that oracle is pinned (--oracle flag).
[[nodiscard]] std::optional<std::string> check_reduction(
    const HyperInstance& inst, std::uint64_t seed,
    const std::string& force_oracle = "", double force_lambda = 0.0);

/// Repair-vs-recompute differential over a mutation script: seed an
/// initial MIS with a seed-chosen leg (greedy-mindeg / Luby / exact),
/// then after every script step check that (a) the delta-patched G_k is
/// bit-identical to a from-scratch ConflictGraph rebuild, (b) the
/// repaired set is a maximal IS of the rebuilt graph, (c) everything
/// that changed lies inside the reported repair ball, and (d) on the
/// exact leg the repaired size never exceeds the rebuilt graph's proven
/// α.  When `force_oracle` is non-empty that leg is pinned (--oracle).
[[nodiscard]] std::optional<std::string> check_mis_repair_vs_recompute(
    const MutationScript& ms, std::uint64_t seed,
    const std::string& force_oracle = "");

/// Flag-gated planted bug: greedy MIS along ascending ids whose
/// independence re-check has an off-by-one — each candidate is tested
/// against every already-chosen vertex EXCEPT the most recent, so a
/// vertex adjacent only to the most recent pick joins anyway.  The QC
/// acceptance gate requires the harness to find this and shrink the
/// witness to <= 5 vertices (a single edge suffices).
[[nodiscard]] std::vector<VertexId> buggy_greedy_mis(const Graph& g);

/// The differential check that exposes buggy_greedy_mis (nullopt iff its
/// output is a valid independent set of g).
[[nodiscard]] std::optional<std::string> check_planted_bug(const Graph& g);

}  // namespace pslocal::qc
