#include "qc/shrink.hpp"

#include <utility>

#include "util/check.hpp"

namespace pslocal::qc {

Graph remove_vertex(const Graph& g, VertexId v) {
  PSL_EXPECTS(v < g.vertex_count());
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (const auto& [a, b] : g.edges()) {
    if (a == v || b == v) continue;
    edges.emplace_back(a > v ? a - 1 : a, b > v ? b - 1 : b);
  }
  return Graph::from_edges(g.vertex_count() - 1, edges);
}

Hypergraph remove_vertex(const Hypergraph& h, VertexId v) {
  PSL_EXPECTS(v < h.vertex_count());
  std::vector<std::vector<VertexId>> edges;
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    std::vector<VertexId> kept;
    for (const VertexId u : h.edge(e)) {
      if (u == v) continue;
      kept.push_back(u > v ? u - 1 : u);
    }
    if (!kept.empty()) edges.push_back(std::move(kept));
  }
  return Hypergraph(h.vertex_count() - 1, std::move(edges));
}

Hypergraph remove_edge(const Hypergraph& h, EdgeId e) {
  PSL_EXPECTS(e < h.edge_count());
  std::vector<bool> keep(h.edge_count(), true);
  keep[e] = false;
  return h.restrict_edges(keep);
}

Graph shrink_graph(Graph g,
                   const std::function<bool(const Graph&)>& still_fails,
                   ShrinkLog* log_out) {
  ShrinkLog local;
  ShrinkLog& log = log_out != nullptr ? *log_out : local;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Descending ids: deleting vertex v never relabels the vertices the
    // pass has yet to try.
    for (VertexId v = static_cast<VertexId>(g.vertex_count()); v-- > 0;) {
      Graph candidate = remove_vertex(g, v);
      ++log.attempts;
      if (still_fails(candidate)) {
        g = std::move(candidate);
        ++log.accepted;
        progressed = true;
      }
    }
  }
  return g;
}

Hypergraph shrink_hypergraph(
    Hypergraph h, const std::function<bool(const Hypergraph&)>& still_fails,
    bool edges_only, ShrinkLog* log_out) {
  ShrinkLog local;
  ShrinkLog& log = log_out != nullptr ? *log_out : local;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (EdgeId e = static_cast<EdgeId>(h.edge_count()); e-- > 0;) {
      Hypergraph candidate = remove_edge(h, e);
      ++log.attempts;
      if (still_fails(candidate)) {
        h = std::move(candidate);
        ++log.accepted;
        progressed = true;
      }
    }
    if (edges_only) continue;
    for (VertexId v = static_cast<VertexId>(h.vertex_count()); v-- > 0;) {
      Hypergraph candidate = remove_vertex(h, v);
      ++log.attempts;
      if (still_fails(candidate)) {
        h = std::move(candidate);
        ++log.accepted;
        progressed = true;
      }
    }
  }
  return h;
}

std::vector<service::Request> shrink_requests(
    std::vector<service::Request> requests,
    const std::function<bool(const std::vector<service::Request>&)>&
        still_fails,
    ShrinkLog* log_out) {
  ShrinkLog local;
  ShrinkLog& log = log_out != nullptr ? *log_out : local;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = requests.size(); i-- > 0;) {
      std::vector<service::Request> candidate = requests;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      ++log.attempts;
      if (still_fails(candidate)) {
        requests = std::move(candidate);
        ++log.accepted;
        progressed = true;
      }
    }
  }
  return requests;
}

std::vector<Mutation> shrink_mutations(
    std::vector<Mutation> script,
    const std::function<bool(const std::vector<Mutation>&)>& still_fails,
    ShrinkLog* log_out) {
  ShrinkLog local;
  ShrinkLog& log = log_out != nullptr ? *log_out : local;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = script.size(); i-- > 0;) {
      std::vector<Mutation> candidate = script;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      ++log.attempts;
      if (still_fails(candidate)) {
        script = std::move(candidate);
        ++log.accepted;
        progressed = true;
      }
    }
  }
  return script;
}

}  // namespace pslocal::qc
