// Seed-deterministic random generators for the QC harness (src/qc/).
//
// Every generator is a pure function of explicit Rng state (util/rng.hpp),
// so a failing fuzz iteration is reproduced exactly by re-running with the
// iteration seed printed in the failure message — no corpus files, no
// global state.  Three input domains cover the library's surface:
//
//  * graphs            — the MIS solvers' inputs (mixed structured/random
//                        families, the same zoo the oracle sweeps use);
//  * hypergraphs       — named families with a *witness*: a CF k-coloring
//                        certificate carried alongside, which is exactly
//                        the promise the Theorem 1.1 reduction needs and
//                        what Lemma 2.1 a) is checked against;
//  * service traces    — parameter jitter over service::generate_trace,
//                        the serving engine's seeded workload format.
//
// Named families are shared with tests/test_property_sweeps.cpp so a
// sweep failure and a fuzz failure print the same reproducer vocabulary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coloring/conflict_free.hpp"
#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/mutation.hpp"
#include "service/workload.hpp"
#include "util/rng.hpp"

namespace pslocal::qc {

/// A hypergraph instance with its conflict-free colorability certificate.
/// `witness` is a CF k-coloring of `hypergraph` (checked by tests), so the
/// instance provably satisfies the reduction's precondition — and keeps
/// satisfying it under edge-subset shrinking (shrink.hpp), since every
/// edge subset of a CF-colorable hypergraph is CF-colorable by the same
/// coloring.
struct HyperInstance {
  std::string family;
  std::uint64_t seed = 0;
  Hypergraph hypergraph;
  std::size_t k = 0;
  CfColoring witness;  // CF k-coloring certificate (colors in [1, k])
};

/// The named hypergraph families, in the order arbitrary_instance draws
/// from ("planted-k2", "planted-k3", "planted-k4", "interval",
/// "ring-neighborhoods", "path-neighborhoods").
[[nodiscard]] const std::vector<std::string>& hyper_family_names();

/// Build the named family deterministically from (family, seed).
/// PSL_CHECKs on unknown names.
[[nodiscard]] HyperInstance make_family(const std::string& family,
                                        std::uint64_t seed);

/// A random named-family instance.  When `force_family` is non-empty the
/// family is pinned (the --family flag of pslocal_fuzz) and only the seed
/// varies.
[[nodiscard]] HyperInstance arbitrary_instance(
    Rng& rng, const std::string& force_family = "");

/// A random graph from a mixed zoo of structured and random families,
/// with at most `max_n` vertices (including the empty and edgeless ends
/// of the spectrum — shrinking tends to land there).
[[nodiscard]] Graph arbitrary_graph(Rng& rng, std::size_t max_n = 36);

/// A small unconstrained hypergraph (no planted structure) for checkers
/// that can afford exact references: n <= max_n vertices, a handful of
/// edges of size 1..4.
[[nodiscard]] Hypergraph arbitrary_tiny_hypergraph(Rng& rng,
                                                   std::size_t max_n = 9);

/// Jittered parameters for a small service trace (a few dozen requests
/// over a pool of a few instances, random workload mix).
[[nodiscard]] service::TraceParams arbitrary_trace_params(Rng& rng);

/// A mutation-trace instance: a small planted base plus a script that is
/// valid at every prefix.  `witness` is a CF k-coloring over the *final*
/// vertex count (n only grows — tombstones keep slots) whose restriction
/// to each prefix's vertices is a CF coloring of that prefix, so the
/// reduction precondition survives every edit.  Bases are kept small
/// (n <= 16) so the exact leg of mis_repair_vs_recompute stays cheap.
struct MutationScript {
  std::string family;
  std::uint64_t seed = 0;
  HyperInstance base;
  std::vector<Mutation> script;
  CfColoring witness;  // CF coloring valid at every script prefix
};

/// The named mutation-trace families, in the order
/// arbitrary_mutation_script draws from:
///  * "mutation_heavy" — long mixed edit streams (~50% witness-respecting
///    edge inserts, the rest removals and vertex churn);
///  * "churn_burst"    — bursts that tear out a clutch of edges and
///    immediately re-add the same contents (cache/epoch churn with a
///    content-identical endpoint).
[[nodiscard]] const std::vector<std::string>& mutation_family_names();

/// Build the named mutation family deterministically from (family, seed).
/// PSL_CHECKs on unknown names.
[[nodiscard]] MutationScript make_mutation_family(const std::string& family,
                                                  std::uint64_t seed);

/// A random named-family mutation script; `force_family` pins the family
/// (the --family flag of pslocal_fuzz, shared with hypergraph families).
[[nodiscard]] MutationScript arbitrary_mutation_script(
    Rng& rng, const std::string& force_family = "");

/// Compact printable forms used in counterexample reports.
[[nodiscard]] std::string describe(const Graph& g);
[[nodiscard]] std::string describe(const Hypergraph& h);
[[nodiscard]] std::string describe(const MutationScript& ms);

}  // namespace pslocal::qc
