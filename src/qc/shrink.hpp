// Greedy shrinking to minimal counterexamples.
//
// When a property fails, the raw counterexample is a random 30-vertex
// graph or a 40-request trace — too big to read.  The shrinkers below
// repeatedly try single deletions (a vertex, a hyperedge, a request) and
// keep each deletion whose result STILL fails the caller's predicate,
// until a full pass accepts nothing.  The result is 1-minimal: no single
// deletion preserves the failure.  Deletions only ever remove structure,
// so a predicate that is a pure function of its input makes shrinking
// terminate after at most (initial size)^2 predicate calls.
//
// Domain note: hypergraph shrinking offers an edges-only mode because the
// reduction's precondition (H admits a CF k-coloring) survives edge
// deletion but not vertex deletion — an edge's unique-color witness
// vertex may be the one removed.  Properties that rely on a witness
// coloring shrink edges-only; witness-free properties shrink both.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/mutation.hpp"
#include "service/request.hpp"

namespace pslocal::qc {

/// g with vertex v deleted; higher-numbered vertices shift down by one.
[[nodiscard]] Graph remove_vertex(const Graph& g, VertexId v);

/// h with vertex v deleted from every edge (edges left empty disappear);
/// higher-numbered vertices shift down by one.
[[nodiscard]] Hypergraph remove_vertex(const Hypergraph& h, VertexId v);

/// h with edge e deleted (same vertex set).
[[nodiscard]] Hypergraph remove_edge(const Hypergraph& h, EdgeId e);

/// Shrink bookkeeping, for tests of the shrinker itself and for fuzz
/// reports (deterministic — counts predicate evaluations, not time).
struct ShrinkLog {
  std::size_t attempts = 0;  // candidate deletions tried
  std::size_t accepted = 0;  // deletions that kept the failure
};

/// Greedy vertex-deletion shrink: returns a 1-minimal graph for which
/// `still_fails` is true.  Precondition: still_fails(g).
[[nodiscard]] Graph shrink_graph(
    Graph g, const std::function<bool(const Graph&)>& still_fails,
    ShrinkLog* log = nullptr);

/// Greedy hyperedge- then (unless edges_only) vertex-deletion shrink.
/// Precondition: still_fails(h).
[[nodiscard]] Hypergraph shrink_hypergraph(
    Hypergraph h, const std::function<bool(const Hypergraph&)>& still_fails,
    bool edges_only = false, ShrinkLog* log = nullptr);

/// Greedy request-deletion shrink over a service trace's request list.
/// Precondition: still_fails(requests).
[[nodiscard]] std::vector<service::Request> shrink_requests(
    std::vector<service::Request> requests,
    const std::function<bool(const std::vector<service::Request>&)>&
        still_fails,
    ShrinkLog* log = nullptr);

/// Greedy mutation-deletion shrink over a mutation script.  Deleting a
/// step can invalidate later steps (edge ids shift), so the predicate
/// must treat invalid candidates as "does not fail" — the property layer
/// guards with validate_script before re-running the check.
/// Precondition: still_fails(script).
[[nodiscard]] std::vector<Mutation> shrink_mutations(
    std::vector<Mutation> script,
    const std::function<bool(const std::vector<Mutation>&)>& still_fails,
    ShrinkLog* log = nullptr);

}  // namespace pslocal::qc
