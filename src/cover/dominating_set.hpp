// Minimum dominating set approximation — the [GHK18] P-SLOCAL-complete
// problem listed in the paper's introduction ("approximations of
// dominating set and distributed set cover").
//
// A set D ⊆ V dominates G if every vertex is in D or adjacent to it.
// The classic greedy (repeatedly take the vertex covering the most
// still-uncovered vertices) achieves an H(Δ+1) <= ln(Δ+1) + 1
// approximation of the optimum; we ship it as the centralized reference,
// together with an exact solver for small instances (so tests can measure
// the ratio) and a verifier.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

/// True iff every vertex is in `set` or has a neighbor in it.
bool is_dominating_set(const Graph& g, const std::vector<VertexId>& set);

/// Greedy H(Δ+1)-approximation of the minimum dominating set.
std::vector<VertexId> greedy_dominating_set(const Graph& g);

/// Exact minimum dominating set by branch and bound (small graphs).
struct ExactDominatingSetResult {
  std::vector<VertexId> set;
  bool proven_optimal = false;
  std::uint64_t nodes_explored = 0;
};
ExactDominatingSetResult exact_dominating_set(
    const Graph& g, std::uint64_t node_budget = 5'000'000);

/// The greedy guarantee ratio H(Δ+1) = 1 + 1/2 + ... + 1/(Δ+1).
double dominating_set_guarantee(const Graph& g);

}  // namespace pslocal
