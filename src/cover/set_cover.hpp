// Distributed set cover approximation — the second [GHK18]
// P-SLOCAL-complete covering problem named in the paper's introduction
// ("approximations of dominating set and distributed set cover").
//
// Instance: a hypergraph H whose edges are the available sets and whose
// vertices are the elements; a cover is a set of edge ids whose union is
// V(H).  Greedy (largest uncovered gain first) is the classic
// H(rank)-approximation; an exact branch-and-bound serves small instances
// so tests can measure the actual ratio.  Dominating set is the special
// case H = closed_neighborhood_hypergraph(G).
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace pslocal {

/// True iff the union of the chosen edges is V(H) (edge ids valid and
/// distinct not required; duplicates are harmless).
bool is_set_cover(const Hypergraph& h, const std::vector<EdgeId>& cover);

/// True iff some cover exists (every element appears in some edge).
bool set_cover_feasible(const Hypergraph& h);

/// Greedy H(rank)-approximation.  Precondition: feasible.
std::vector<EdgeId> greedy_set_cover(const Hypergraph& h);

struct ExactSetCoverResult {
  std::vector<EdgeId> cover;
  bool proven_optimal = false;
  std::uint64_t nodes_explored = 0;
};
/// Exact minimum cover by branch and bound (small instances).
ExactSetCoverResult exact_set_cover(const Hypergraph& h,
                                    std::uint64_t node_budget = 5'000'000);

/// The greedy guarantee H(rank) = 1 + 1/2 + ... + 1/rank.
double set_cover_guarantee(const Hypergraph& h);

}  // namespace pslocal
