#include "cover/set_cover.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pslocal {

bool is_set_cover(const Hypergraph& h, const std::vector<EdgeId>& cover) {
  std::vector<bool> covered(h.vertex_count(), false);
  for (EdgeId e : cover) {
    if (e >= h.edge_count()) return false;
    for (VertexId v : h.edge(e)) covered[v] = true;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool b) { return b; });
}

bool set_cover_feasible(const Hypergraph& h) {
  for (VertexId v = 0; v < h.vertex_count(); ++v)
    if (h.edges_of(v).empty()) return false;
  return true;
}

std::vector<EdgeId> greedy_set_cover(const Hypergraph& h) {
  PSL_EXPECTS(set_cover_feasible(h));
  std::vector<bool> covered(h.vertex_count(), false);
  std::size_t uncovered = h.vertex_count();
  std::vector<EdgeId> out;
  while (uncovered > 0) {
    EdgeId best = 0;
    std::size_t best_gain = 0;
    for (EdgeId e = 0; e < h.edge_count(); ++e) {
      std::size_t gain = 0;
      for (VertexId v : h.edge(e))
        if (!covered[v]) ++gain;
      if (gain > best_gain) {
        best = e;
        best_gain = gain;
      }
    }
    PSL_CHECK(best_gain > 0);
    out.push_back(best);
    for (VertexId v : h.edge(best)) {
      if (!covered[v]) {
        covered[v] = true;
        --uncovered;
      }
    }
  }
  PSL_ENSURES(is_set_cover(h, out));
  return out;
}

namespace {

class CoverSearcher {
 public:
  CoverSearcher(const Hypergraph& h, std::uint64_t budget)
      : h_(h), budget_(budget) {}

  ExactSetCoverResult run() {
    best_ = greedy_set_cover(h_);  // warm start
    std::vector<EdgeId> cur;
    std::vector<bool> covered(h_.vertex_count(), false);
    expand(0, cur, covered, h_.vertex_count());
    ExactSetCoverResult res;
    res.cover = best_;
    res.proven_optimal = !exhausted_;
    res.nodes_explored = nodes_;
    return res;
  }

 private:
  void expand(VertexId from, std::vector<EdgeId>& cur,
              std::vector<bool>& covered, std::size_t uncovered) {
    if (exhausted_) return;
    if (++nodes_ > budget_) {
      exhausted_ = true;
      return;
    }
    if (uncovered == 0) {
      if (cur.size() < best_.size()) best_ = cur;
      return;
    }
    if (cur.size() + 1 >= best_.size()) return;  // bound
    // Branch on the smallest uncovered element: one of its edges must be
    // in the cover.
    VertexId u = from;
    while (u < h_.vertex_count() && covered[u]) ++u;
    PSL_CHECK(u < h_.vertex_count());
    for (EdgeId e : h_.edges_of(u)) {
      std::vector<VertexId> newly;
      for (VertexId v : h_.edge(e))
        if (!covered[v]) newly.push_back(v);
      for (VertexId v : newly) covered[v] = true;
      cur.push_back(e);
      expand(u, cur, covered, uncovered - newly.size());
      cur.pop_back();
      for (VertexId v : newly) covered[v] = false;
    }
  }

  const Hypergraph& h_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;
  bool exhausted_ = false;
  std::vector<EdgeId> best_;
};

}  // namespace

ExactSetCoverResult exact_set_cover(const Hypergraph& h,
                                    std::uint64_t node_budget) {
  PSL_EXPECTS(set_cover_feasible(h));
  if (h.vertex_count() == 0) return {{}, true, 0};
  CoverSearcher searcher(h, node_budget);
  auto res = searcher.run();
  PSL_ENSURES(is_set_cover(h, res.cover));
  return res;
}

double set_cover_guarantee(const Hypergraph& h) {
  double g = 0.0;
  for (std::size_t i = 1; i <= h.rank(); ++i)
    g += 1.0 / static_cast<double>(i);
  return g;
}

}  // namespace pslocal
