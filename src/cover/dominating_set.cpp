#include "cover/dominating_set.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pslocal {

bool is_dominating_set(const Graph& g, const std::vector<VertexId>& set) {
  std::vector<bool> covered(g.vertex_count(), false);
  for (VertexId v : set) {
    if (v >= g.vertex_count()) return false;
    covered[v] = true;
    for (VertexId w : g.neighbors(v)) covered[w] = true;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool b) { return b; });
}

std::vector<VertexId> greedy_dominating_set(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<bool> covered(n, false);
  std::size_t uncovered = n;
  std::vector<VertexId> out;
  while (uncovered > 0) {
    // Pick the vertex covering the most uncovered vertices (closed
    // neighborhood); ties to the smallest id for determinism.
    VertexId best = 0;
    std::size_t best_gain = 0;
    for (VertexId v = 0; v < n; ++v) {
      std::size_t gain = covered[v] ? 0 : 1;
      for (VertexId w : g.neighbors(v))
        if (!covered[w]) ++gain;
      if (gain > best_gain) {
        best = v;
        best_gain = gain;
      }
    }
    PSL_CHECK(best_gain > 0);
    out.push_back(best);
    if (!covered[best]) {
      covered[best] = true;
      --uncovered;
    }
    for (VertexId w : g.neighbors(best)) {
      if (!covered[w]) {
        covered[w] = true;
        --uncovered;
      }
    }
  }
  PSL_ENSURES(is_dominating_set(g, out));
  return out;
}

namespace {

class DomSearcher {
 public:
  DomSearcher(const Graph& g, std::uint64_t budget)
      : g_(g), n_(g.vertex_count()), budget_(budget) {}

  ExactDominatingSetResult run() {
    best_ = greedy_dominating_set(g_);  // warm start
    std::vector<VertexId> cur;
    std::vector<bool> covered(n_, false);
    expand(0, cur, covered, n_);
    ExactDominatingSetResult res;
    res.set = best_;
    res.proven_optimal = !exhausted_;
    res.nodes_explored = nodes_;
    return res;
  }

 private:
  // Branch on the smallest-id uncovered vertex u: some vertex of N[u]
  // must be in the dominating set; try each.
  void expand(VertexId from, std::vector<VertexId>& cur,
              std::vector<bool>& covered, std::size_t uncovered) {
    if (exhausted_) return;
    if (++nodes_ > budget_) {
      exhausted_ = true;
      return;
    }
    if (cur.size() + 1 >= best_.size() && uncovered > 0) return;  // bound
    if (uncovered == 0) {
      if (cur.size() < best_.size()) best_ = cur;
      return;
    }
    VertexId u = from;
    while (u < n_ && covered[u]) ++u;
    PSL_CHECK(u < n_);
    std::vector<VertexId> candidates{u};
    candidates.insert(candidates.end(), g_.neighbors(u).begin(),
                      g_.neighbors(u).end());
    for (VertexId c : candidates) {
      std::vector<std::size_t> newly;
      if (!covered[c]) newly.push_back(c);
      for (VertexId w : g_.neighbors(c))
        if (!covered[w]) newly.push_back(w);
      for (auto w : newly) covered[w] = true;
      cur.push_back(c);
      expand(u, cur, covered, uncovered - newly.size());
      cur.pop_back();
      for (auto w : newly) covered[w] = false;
    }
  }

  const Graph& g_;
  std::size_t n_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;
  bool exhausted_ = false;
  std::vector<VertexId> best_;
};

}  // namespace

ExactDominatingSetResult exact_dominating_set(const Graph& g,
                                              std::uint64_t node_budget) {
  if (g.vertex_count() == 0) return {{}, true, 0};
  DomSearcher searcher(g, node_budget);
  auto res = searcher.run();
  PSL_ENSURES(is_dominating_set(g, res.set));
  return res;
}

double dominating_set_guarantee(const Graph& g) {
  double h = 0.0;
  for (std::size_t i = 1; i <= g.max_degree() + 1; ++i)
    h += 1.0 / static_cast<double>(i);
  return h;
}

}  // namespace pslocal
