// Conflict-free colorings and multicolorings of hypergraphs.
//
// Paper, Section 1: a vertex coloring f : V -> {1..k} of a hypergraph H is
// conflict-free if every edge e has a vertex whose color is *unique* in e
// ("happy" edge).  In the multicoloring variant each vertex carries a set
// of colors; an edge is happy if some vertex has some color that no other
// vertex of the edge carries.
//
// Conventions: CF colors are 1-based; 0 encodes the paper's ⊥ (uncolored).
// (This is distinct from graph colorings in coloring.hpp, which are
// 0-based — CF colorings come from the paper's palette {1..k} ∪ {⊥}.)
#pragma once

#include <cstddef>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace pslocal {

inline constexpr std::size_t kCfUncolored = 0;

/// Single-color-per-vertex CF coloring; entry 0 means uncolored (⊥).
using CfColoring = std::vector<std::size_t>;

/// Multicoloring: a sorted set of colors (all >= 1) per vertex.
class CfMulticoloring {
 public:
  CfMulticoloring() = default;
  explicit CfMulticoloring(std::size_t n) : colors_(n) {}

  [[nodiscard]] std::size_t vertex_count() const { return colors_.size(); }

  /// Add color c (>= 1) to vertex v; duplicates are ignored.
  void add_color(VertexId v, std::size_t c);

  [[nodiscard]] const std::vector<std::size_t>& colors_of(VertexId v) const {
    PSL_EXPECTS(v < colors_.size());
    return colors_[v];
  }

  [[nodiscard]] bool has_color(VertexId v, std::size_t c) const;

  /// Total number of distinct colors across all vertices.
  [[nodiscard]] std::size_t palette_size() const;

  /// Largest color value used (0 if none).
  [[nodiscard]] std::size_t max_color() const;

  /// Total number of (vertex, color) assignments.
  [[nodiscard]] std::size_t assignment_count() const;

  /// Merge a single coloring, offsetting its colors by `palette_offset`
  /// (color c becomes palette_offset + c).  Used by the phase-based
  /// reduction, where phase i uses a distinct palette.
  void absorb(const CfColoring& f, std::size_t palette_offset);

 private:
  std::vector<std::vector<std::size_t>> colors_;
};

/// Is edge e happy under single coloring f?  (Some colored vertex of e has
/// a color not shared by any other vertex of e.)
bool is_edge_happy(const Hypergraph& h, EdgeId e, const CfColoring& f);

/// Is edge e happy under multicoloring mc?
bool is_edge_happy(const Hypergraph& h, EdgeId e, const CfMulticoloring& mc);

/// Happy flags for all edges.
std::vector<bool> happy_edges(const Hypergraph& h, const CfColoring& f);
std::vector<bool> happy_edges(const Hypergraph& h, const CfMulticoloring& mc);

std::size_t happy_edge_count(const Hypergraph& h, const CfColoring& f);
std::size_t happy_edge_count(const Hypergraph& h, const CfMulticoloring& mc);

/// Conflict-free = every edge happy.
bool is_conflict_free(const Hypergraph& h, const CfColoring& f);
bool is_conflict_free(const Hypergraph& h, const CfMulticoloring& mc);

/// Number of distinct colors used by a single coloring (excluding ⊥).
std::size_t cf_color_count(const CfColoring& f);

}  // namespace pslocal
