// Exact conflict-free chromatic number (single colors per vertex) by
// backtracking — the ground-truth reference for tiny instances, letting
// tests and E7 quantify how far the reduction's k·ρ colors sit from the
// true optimum.
#pragma once

#include <cstdint>
#include <optional>

#include "coloring/conflict_free.hpp"
#include "hypergraph/hypergraph.hpp"

namespace pslocal {

struct ExactCfResult {
  std::size_t colors = 0;     // minimum k with a CF k-coloring (if found)
  CfColoring coloring;        // a witness using colors 1..k
  bool found = false;         // false if no k <= max_k works or budget hit
  bool budget_exhausted = false;
  std::uint64_t nodes_explored = 0;
};

/// Smallest k in [1, max_k] admitting a conflict-free k-coloring of h
/// where every vertex gets exactly one color (the paper's single-color
/// regime from Lemma 2.1 a).
ExactCfResult exact_min_cf_colors(const Hypergraph& h, std::size_t max_k,
                                  std::uint64_t node_budget = 10'000'000);

}  // namespace pslocal
