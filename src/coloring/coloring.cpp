#include "coloring/coloring.hpp"

#include <unordered_set>

namespace pslocal {

bool is_proper_coloring(const Graph& g, const std::vector<std::size_t>& color) {
  if (color.size() != g.vertex_count()) return false;
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (color[v] == kNoColor) return false;
  return is_partial_proper_coloring(g, color);
}

bool is_partial_proper_coloring(const Graph& g,
                                const std::vector<std::size_t>& color) {
  if (color.size() != g.vertex_count()) return false;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (color[v] == kNoColor) continue;
    for (VertexId w : g.neighbors(v))
      if (w > v && color[w] == color[v]) return false;
  }
  return true;
}

std::size_t color_count(const std::vector<std::size_t>& color) {
  std::unordered_set<std::size_t> used;
  for (auto c : color)
    if (c != kNoColor) used.insert(c);
  return used.size();
}

}  // namespace pslocal
