#include "coloring/splitting.hpp"

#include <cmath>

#include "slocal/engine.hpp"
#include "util/check.hpp"

namespace pslocal {

bool is_valid_splitting(const Hypergraph& h, const Splitting& s) {
  return monochromatic_edge_count(h, s) == 0;
}

std::size_t monochromatic_edge_count(const Hypergraph& h,
                                     const Splitting& s) {
  PSL_EXPECTS(s.size() == h.vertex_count());
  std::size_t mono = 0;
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto verts = h.edge(e);
    bool any_red = false, any_blue = false;
    for (VertexId v : verts) (s[v] ? any_blue : any_red) = true;
    if (!(any_red && any_blue)) ++mono;
  }
  return mono;
}

Splitting random_splitting(const Hypergraph& h, Rng& rng) {
  Splitting s(h.vertex_count());
  for (std::size_t v = 0; v < s.size(); ++v) s[v] = rng.next_bool(0.5);
  return s;
}

double splitting_estimator(const Hypergraph& h) {
  double est = 0.0;
  for (EdgeId e = 0; e < h.edge_count(); ++e)
    est += std::pow(2.0, 1.0 - static_cast<double>(h.edge_size(e)));
  return est;
}

MoserTardosResult moser_tardos_splitting(const Hypergraph& h, Rng& rng,
                                         std::size_t max_resamples) {
  MoserTardosResult res;
  res.splitting = random_splitting(h, rng);
  while (res.resamples < max_resamples) {
    // Find any monochromatic edge (first by id — the MT analysis allows
    // arbitrary selection rules).
    EdgeId bad = static_cast<EdgeId>(h.edge_count());
    for (EdgeId e = 0; e < h.edge_count(); ++e) {
      const auto verts = h.edge(e);
      bool any_red = false, any_blue = false;
      for (VertexId v : verts)
        (res.splitting[v] ? any_blue : any_red) = true;
      if (!(any_red && any_blue)) {
        bad = e;
        break;
      }
    }
    if (bad == h.edge_count()) {
      res.success = true;
      return res;
    }
    for (VertexId v : h.edge(bad)) res.splitting[v] = rng.next_bool(0.5);
    ++res.resamples;
  }
  res.success = is_valid_splitting(h, res.splitting);
  return res;
}

double lll_criterion(const Hypergraph& h) {
  if (h.edge_count() == 0) return 0.0;
  // D = max over edges of the number of *other* edges it shares a vertex
  // with.
  std::size_t max_deps = 0;
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    std::vector<bool> seen(h.edge_count(), false);
    std::size_t deps = 0;
    for (VertexId v : h.edge(e)) {
      for (EdgeId g : h.edges_of(v)) {
        if (g != e && !seen[g]) {
          seen[g] = true;
          ++deps;
        }
      }
    }
    max_deps = std::max(max_deps, deps);
  }
  const double p = std::pow(2.0, 1.0 - static_cast<double>(h.corank()));
  constexpr double kEuler = 2.718281828459045;
  return kEuler * p * static_cast<double>(max_deps + 1);
}

namespace {

struct SplitState {
  bool assigned = false;
  bool blue = false;
};

/// P(edge e becomes monochromatic | partial assignment), with the view's
/// center hypothetically colored `pending_blue`.
double mono_probability(const Hypergraph& h, EdgeId e,
                        SLocalView<SplitState>& view, VertexId pending,
                        bool pending_blue) {
  std::size_t unassigned = 0;
  bool any_red = false, any_blue = false;
  for (VertexId u : h.edge(e)) {
    bool assigned, blue;
    if (u == pending) {
      assigned = true;
      blue = pending_blue;
    } else {
      const SplitState& s = view.state(u);
      assigned = s.assigned;
      blue = s.blue;
    }
    if (!assigned) {
      ++unassigned;
    } else {
      (blue ? any_blue : any_red) = true;
    }
  }
  if (any_red && any_blue) return 0.0;
  const double tail = std::pow(2.0, -static_cast<double>(unassigned));
  if (!any_red && !any_blue) return 2.0 * tail;  // either color could win
  return tail;  // must complete the one monochromatic color
}

}  // namespace

DerandomizedSplittingResult derandomized_splitting(
    const Hypergraph& h, const std::vector<VertexId>& order) {
  const Graph primal = h.primal_graph();
  DerandomizedSplittingResult result;
  result.initial_estimator = splitting_estimator(h);

  auto run = run_slocal<SplitState>(
      primal, std::vector<SplitState>(h.vertex_count()), order,
      [&h](SLocalView<SplitState>& view) {
        const VertexId v = view.center();
        double if_red = 0.0, if_blue = 0.0;
        for (EdgeId e : h.edges_of(v)) {
          if_red += mono_probability(h, e, view, v, /*pending_blue=*/false);
          if_blue += mono_probability(h, e, view, v, /*pending_blue=*/true);
        }
        view.own_state() =
            SplitState{true, /*blue=*/if_blue < if_red};
      });

  result.locality = run.max_locality;
  result.splitting.resize(h.vertex_count());
  for (VertexId v = 0; v < h.vertex_count(); ++v) {
    PSL_CHECK(run.states[v].assigned);
    result.splitting[v] = run.states[v].blue;
  }
  // Conditional expectations never increase the estimator, so the final
  // monochromatic count (an integer) is bounded by the initial value.
  PSL_ENSURES(static_cast<double>(monochromatic_edge_count(
                  h, result.splitting)) <= result.initial_estimator + 1e-9);
  return result;
}

}  // namespace pslocal
