// Baseline conflict-free coloring algorithms the reduction is compared
// against in experiment E7 (bench_cf_baselines):
//
//  * fresh_color_baseline — the trivial SLOCAL(1) algorithm: every edge
//    grants one of its vertices a globally fresh color.  Always correct,
//    but uses up to m colors (exponentially worse than the reduction's
//    k * (λ ln m + 1) for k, λ = polylog).
//
//  * dyadic_interval_cf_coloring — the classical coloring for interval
//    hypergraphs (the family [DN18] studies): color(v) = 1 + (exponent of
//    the largest power of two dividing v+1).  Every interval of points has
//    a unique maximum-exponent element, so this single coloring is
//    conflict-free for *every* interval hypergraph, with at most
//    floor(log2 n) + 1 colors.
#pragma once

#include "coloring/conflict_free.hpp"
#include "hypergraph/hypergraph.hpp"
#include "runtime/global.hpp"

namespace pslocal {

/// One fresh color per edge (assigned to the edge's first vertex).
/// Returns a multicoloring using exactly min(m, needed) colors; always
/// conflict-free.
CfMulticoloring fresh_color_baseline(const Hypergraph& h);

/// The dyadic coloring of points 0..n-1 (see header comment).  The result
/// is conflict-free for any hypergraph whose edges are intervals of
/// consecutive points.
CfColoring dyadic_interval_cf_coloring(std::size_t n);

/// True iff every edge of h is a set of consecutive points.
bool is_interval_hypergraph(const Hypergraph& h);

struct GreedyCfResult {
  CfColoring coloring;     // single total coloring, colors 1..colors_used
  std::size_t colors_used = 0;
};

/// Direct greedy conflict-free coloring heuristic (no worst-case color
/// guarantee; the "what a practitioner would try first" baseline for E7):
/// color vertices in decreasing hypergraph-degree order, giving each the
/// smallest color under which every incident edge that just became fully
/// colored is happy.  A globally fresh color always works (it is unique
/// in every incident edge), and an edge is only checked at the moment it
/// completes — after which none of its vertices is ever recolored — so
/// the pass always ends in a valid CF coloring.  For large palettes the
/// per-vertex color scoring fans out on `sched`; the pick (minimum
/// feasible color) is identical at every thread count.
GreedyCfResult greedy_cf_coloring(
    const Hypergraph& h,
    runtime::Scheduler& sched = runtime::global_scheduler());

}  // namespace pslocal
