#include "coloring/cf_baselines.hpp"

#include <algorithm>
#include <bit>
#include <vector>

namespace pslocal {

CfMulticoloring fresh_color_baseline(const Hypergraph& h) {
  CfMulticoloring mc(h.vertex_count());
  std::size_t next_color = 1;
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto verts = h.edge(e);
    PSL_CHECK(!verts.empty());
    mc.add_color(verts.front(), next_color++);
  }
  PSL_ENSURES(is_conflict_free(h, mc));
  return mc;
}

CfColoring dyadic_interval_cf_coloring(std::size_t n) {
  CfColoring f(n, kCfUncolored);
  for (std::size_t v = 0; v < n; ++v) {
    // Exponent of the largest power of two dividing v+1.  Within any
    // interval the maximal exponent is attained exactly once: two
    // multiples of 2^j that are 2^j apart sandwich a multiple of 2^{j+1}.
    f[v] = 1 + static_cast<std::size_t>(std::countr_zero(v + 1));
  }
  return f;
}

GreedyCfResult greedy_cf_coloring(const Hypergraph& h) {
  const std::size_t n = h.vertex_count();
  GreedyCfResult res;
  res.coloring.assign(n, kCfUncolored);

  // High-degree vertices first: they complete the most edges and benefit
  // most from small colors.
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return h.vertex_degree(a) > h.vertex_degree(b);
  });

  auto edge_complete_and_happy = [&](EdgeId e) {
    // Returns true unless the edge is fully colored *and* unhappy.
    std::vector<std::size_t> colors;
    for (VertexId u : h.edge(e)) {
      if (res.coloring[u] == kCfUncolored) return true;
      colors.push_back(res.coloring[u]);
    }
    std::sort(colors.begin(), colors.end());
    for (std::size_t i = 0; i < colors.size(); ++i) {
      const bool prev_same = i > 0 && colors[i - 1] == colors[i];
      const bool next_same = i + 1 < colors.size() && colors[i + 1] == colors[i];
      if (!prev_same && !next_same) return true;  // unique color found
    }
    return false;
  };

  std::size_t palette = 0;
  for (VertexId v : order) {
    bool placed = false;
    for (std::size_t c = 1; c <= palette && !placed; ++c) {
      res.coloring[v] = c;
      placed = true;
      for (EdgeId e : h.edges_of(v)) {
        if (!edge_complete_and_happy(e)) {
          placed = false;
          break;
        }
      }
    }
    if (!placed) {
      // Fresh color: unique in every incident edge by construction.
      res.coloring[v] = ++palette;
    }
  }
  res.colors_used = cf_color_count(res.coloring);
  PSL_ENSURES(is_conflict_free(h, res.coloring));
  return res;
}

bool is_interval_hypergraph(const Hypergraph& h) {
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto verts = h.edge(e);  // sorted
    for (std::size_t i = 1; i < verts.size(); ++i)
      if (verts[i] != verts[i - 1] + 1) return false;
  }
  return true;
}

}  // namespace pslocal
