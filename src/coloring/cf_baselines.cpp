#include "coloring/cf_baselines.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <vector>

#include "runtime/parallel.hpp"

namespace pslocal {

CfMulticoloring fresh_color_baseline(const Hypergraph& h) {
  CfMulticoloring mc(h.vertex_count());
  std::size_t next_color = 1;
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto verts = h.edge(e);
    PSL_CHECK(!verts.empty());
    mc.add_color(verts.front(), next_color++);
  }
  PSL_ENSURES(is_conflict_free(h, mc));
  return mc;
}

CfColoring dyadic_interval_cf_coloring(std::size_t n) {
  CfColoring f(n, kCfUncolored);
  for (std::size_t v = 0; v < n; ++v) {
    // Exponent of the largest power of two dividing v+1.  Within any
    // interval the maximal exponent is attained exactly once: two
    // multiples of 2^j that are 2^j apart sandwich a multiple of 2^{j+1}.
    f[v] = 1 + static_cast<std::size_t>(std::countr_zero(v + 1));
  }
  return f;
}

GreedyCfResult greedy_cf_coloring(const Hypergraph& h,
                                  runtime::Scheduler& sched) {
  const std::size_t n = h.vertex_count();
  GreedyCfResult res;
  res.coloring.assign(n, kCfUncolored);

  // High-degree vertices first: they complete the most edges and benefit
  // most from small colors.
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return h.vertex_degree(a) > h.vertex_degree(b);
  });

  // Would giving v color c keep every incident edge acceptable?  An edge
  // is acceptable unless it is fully colored *and* has no unique color.
  // Pure read of the committed coloring (v's entry is still kCfUncolored
  // and is substituted virtually), so candidate colors can be scored
  // concurrently.
  auto feasible = [&](VertexId v, std::size_t c,
                      std::vector<std::size_t>& colors) {
    for (EdgeId e : h.edges_of(v)) {
      colors.clear();
      bool complete = true;
      for (VertexId u : h.edge(e)) {
        const std::size_t cu = u == v ? c : res.coloring[u];
        if (cu == kCfUncolored) {
          complete = false;
          break;
        }
        colors.push_back(cu);
      }
      if (!complete) continue;
      std::sort(colors.begin(), colors.end());
      bool happy = false;
      for (std::size_t i = 0; i < colors.size() && !happy; ++i) {
        const bool prev_same = i > 0 && colors[i - 1] == colors[i];
        const bool next_same =
            i + 1 < colors.size() && colors[i + 1] == colors[i];
        happy = !prev_same && !next_same;  // unique color found
      }
      if (!happy) return false;
    }
    return true;
  };

  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  // Below this palette size the sequential early-exit scan wins; both
  // paths compute the same minimum feasible color.
  constexpr std::size_t kParallelPalette = 64;

  std::size_t palette = 0;
  for (VertexId v : order) {
    std::size_t pick = kNone;
    if (palette < kParallelPalette || sched.thread_count() == 1) {
      std::vector<std::size_t> scratch;
      for (std::size_t c = 1; c <= palette; ++c) {
        if (feasible(v, c, scratch)) {
          pick = c;
          break;
        }
      }
    } else {
      // Parallel scoring: min over the palette of the first feasible
      // color.  Chunks scan ascending and stop at their first hit, so
      // each chunk returns its own minimum; combining with min yields
      // exactly the sequential scan's pick.
      pick = runtime::parallel_reduce<std::size_t>(
          sched, {palette, 0}, kNone,
          [&](std::size_t lo, std::size_t hi, std::size_t) {
            std::vector<std::size_t> scratch;
            for (std::size_t i = lo; i < hi; ++i) {
              if (feasible(v, i + 1, scratch)) return i + 1;
            }
            return kNone;
          },
          [](std::size_t a, std::size_t b) { return std::min(a, b); });
    }
    // Fresh color: unique in every incident edge by construction.
    res.coloring[v] = pick == kNone ? ++palette : pick;
  }
  res.colors_used = cf_color_count(res.coloring);
  PSL_ENSURES(is_conflict_free(h, res.coloring));
  return res;
}

bool is_interval_hypergraph(const Hypergraph& h) {
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto verts = h.edge(e);  // sorted
    for (std::size_t i = 1; i < verts.size(); ++i)
      if (verts[i] != verts[i - 1] + 1) return false;
  }
  return true;
}

}  // namespace pslocal
