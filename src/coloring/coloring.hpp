// Proper vertex colorings of graphs (verification + counting).
// Colors are 0-based size_t values; kNoColor marks uncolored vertices.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

inline constexpr std::size_t kNoColor = std::numeric_limits<std::size_t>::max();

/// True iff every edge is bichromatic and every vertex is colored.
bool is_proper_coloring(const Graph& g, const std::vector<std::size_t>& color);

/// True iff every edge with two *colored* endpoints is bichromatic
/// (uncolored vertices allowed).
bool is_partial_proper_coloring(const Graph& g,
                                const std::vector<std::size_t>& color);

/// Number of distinct colors used (ignoring kNoColor).
std::size_t color_count(const std::vector<std::size_t>& color);

}  // namespace pslocal
