// Distributed verification of conflict-free multicolorings.
//
// The paper's Section 1 notes that P-SLOCAL "contains all problems that
// can be solved efficiently by randomized algorithms in the LOCAL model
// as long as a solution of the problem can be verified efficiently
// [GHK18]".  CF multicoloring is such a problem: this module implements
// the O(1)-round LOCAL verifier that witnesses it, running on the
// hypergraph's bipartite incidence graph (vertices + edge-agents):
//
//   round 1: every vertex broadcasts its color set;
//   (edge-agents now know happiness of their edge)
//   round 2: every edge-agent broadcasts its verdict;
//   after which each vertex knows whether all its incident edges are
//   happy — its own part of the global accept/reject output.
#pragma once

#include <cstddef>
#include <vector>

#include "coloring/conflict_free.hpp"
#include "hypergraph/hypergraph.hpp"

namespace pslocal {

struct LocalCfVerification {
  std::vector<bool> edge_happy;      // per hyperedge
  std::vector<bool> vertex_accepts;  // per vertex: all incident edges happy
  bool accept = false;               // global AND
  std::size_t rounds = 0;            // always 2 on nonempty instances
};

/// Run the 2-round LOCAL verifier for multicoloring `mc` on hypergraph h.
LocalCfVerification local_cf_verify(const Hypergraph& h,
                                    const CfMulticoloring& mc);

}  // namespace pslocal
