#include "coloring/local_verifier.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "local/simulator.hpp"
#include "util/check.hpp"

namespace pslocal {

namespace {

// Incidence-graph node states: vertices carry their color set; edge
// agents carry a verdict once computed.
struct VerifierState {
  bool is_edge_agent = false;
  std::vector<std::size_t> colors;  // vertex agents
  std::optional<bool> edge_verdict; // edge agents, after round 1
  std::optional<bool> vertex_accept;  // vertex agents, after round 2
  std::size_t round = 0;
};

struct VerifierMsg {
  bool from_edge_agent = false;
  std::vector<std::size_t> colors;  // round 1 payload
  bool verdict = false;             // round 2 payload
};

class CfVerifier final
    : public BroadcastAlgorithm<VerifierState, VerifierMsg> {
 public:
  CfVerifier(const Hypergraph& h, const CfMulticoloring& mc)
      : h_(h), mc_(mc) {}

  VerifierState init(VertexId v, const Graph&, Rng&) override {
    VerifierState s;
    s.is_edge_agent = v >= h_.vertex_count();
    if (!s.is_edge_agent) s.colors = mc_.colors_of(v);
    return s;
  }

  std::optional<VerifierMsg> emit(VertexId, const VerifierState& s) override {
    VerifierMsg m;
    m.from_edge_agent = s.is_edge_agent;
    if (!s.is_edge_agent) {
      m.colors = s.colors;
      return m;
    }
    if (s.edge_verdict.has_value()) {
      m.verdict = *s.edge_verdict;
      return m;
    }
    return std::nullopt;  // edge agents are silent in round 1
  }

  void step(VertexId, VerifierState& s,
            std::span<const std::optional<VerifierMsg>> inbox, Rng&) override {
    if (s.round == 0 && s.is_edge_agent) {
      // Round 1: tally member colors; happy iff some color is unique.
      std::map<std::size_t, std::size_t> freq;
      for (const auto& m : inbox) {
        PSL_CHECK(m && !m->from_edge_agent);  // members always broadcast
        for (std::size_t c : m->colors) ++freq[c];
      }
      s.edge_verdict = std::any_of(freq.begin(), freq.end(), [](const auto& kv) {
        return kv.second == 1;
      });
    }
    if (s.round == 1 && !s.is_edge_agent) {
      // Round 2: accept iff every incident edge agent reported happy.
      bool ok = true;
      for (const auto& m : inbox)
        if (m && m->from_edge_agent && !m->verdict) ok = false;
      s.vertex_accept = ok;
    }
    ++s.round;
  }

  bool halted(VertexId, const VerifierState& s) override {
    return s.round >= 2;
  }

  std::size_t message_size(const VerifierMsg& m) const override {
    return sizeof(bool) * 2 + m.colors.size() * sizeof(std::size_t);
  }

 private:
  const Hypergraph& h_;
  const CfMulticoloring& mc_;
};

}  // namespace

LocalCfVerification local_cf_verify(const Hypergraph& h,
                                    const CfMulticoloring& mc) {
  PSL_EXPECTS(mc.vertex_count() == h.vertex_count());
  LocalCfVerification out;
  out.edge_happy.assign(h.edge_count(), false);
  out.vertex_accepts.assign(h.vertex_count(), true);
  if (h.vertex_count() == 0) {
    out.accept = true;
    return out;
  }

  const Graph incidence = h.incidence_graph();
  CfVerifier algo(h, mc);
  auto run = run_local(incidence, algo, /*seed=*/0, /*max_rounds=*/4);
  PSL_CHECK(run.all_halted);
  out.rounds = run.rounds;

  out.accept = true;
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto& s = run.states[h.vertex_count() + e];
    PSL_CHECK(s.edge_verdict.has_value());
    out.edge_happy[e] = *s.edge_verdict;
    out.accept = out.accept && out.edge_happy[e];
  }
  for (VertexId v = 0; v < h.vertex_count(); ++v) {
    const auto& s = run.states[v];
    // Isolated vertices receive no verdicts and accept vacuously.
    out.vertex_accepts[v] = s.vertex_accept.value_or(true);
  }
  // Cross-check against the centralized predicate (they must agree).
  PSL_ENSURES(out.accept == is_conflict_free(h, mc));
  return out;
}

}  // namespace pslocal
