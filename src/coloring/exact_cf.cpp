#include "coloring/exact_cf.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pslocal {

namespace {

class CfSearcher {
 public:
  CfSearcher(const Hypergraph& h, std::size_t k, std::uint64_t budget)
      : h_(h), k_(k), budget_(budget),
        coloring_(h.vertex_count(), kCfUncolored) {}

  bool search(std::uint64_t& nodes, bool& exhausted) {
    const bool ok = assign(0, nodes, exhausted);
    return ok;
  }

  [[nodiscard]] const CfColoring& coloring() const { return coloring_; }

 private:
  /// An edge is *doomed* if all its vertices are colored and none is
  /// unique — prune as soon as the last vertex of an edge is placed.
  bool edge_ok_if_complete(EdgeId e) const {
    std::size_t counts[65] = {};  // k_ <= 64 enforced below
    for (VertexId v : h_.edge(e)) {
      if (coloring_[v] == kCfUncolored) return true;  // not complete yet
      ++counts[coloring_[v]];
    }
    for (std::size_t c = 1; c <= k_; ++c)
      if (counts[c] == 1) return true;
    return false;
  }

  bool assign(VertexId v, std::uint64_t& nodes, bool& exhausted) {
    if (exhausted) return false;
    if (++nodes > budget_) {
      exhausted = true;
      return false;
    }
    if (v == h_.vertex_count()) return true;
    // Symmetry breaking: vertex v may only use colors 1..(max used)+1.
    std::size_t max_used = 0;
    for (VertexId u = 0; u < v; ++u) max_used = std::max(max_used, coloring_[u]);
    const std::size_t limit = std::min(k_, max_used + 1);
    for (std::size_t c = 1; c <= limit; ++c) {
      coloring_[v] = c;
      bool ok = true;
      for (EdgeId e : h_.edges_of(v)) {
        if (!edge_ok_if_complete(e)) {
          ok = false;
          break;
        }
      }
      if (ok && assign(v + 1, nodes, exhausted)) return true;
      if (exhausted) break;
    }
    coloring_[v] = kCfUncolored;
    return false;
  }

  const Hypergraph& h_;
  std::size_t k_;
  std::uint64_t budget_;
  CfColoring coloring_;
};

}  // namespace

ExactCfResult exact_min_cf_colors(const Hypergraph& h, std::size_t max_k,
                                  std::uint64_t node_budget) {
  PSL_EXPECTS(max_k >= 1 && max_k <= 64);
  ExactCfResult res;
  for (std::size_t k = 1; k <= max_k; ++k) {
    CfSearcher searcher(h, k, node_budget - res.nodes_explored);
    bool exhausted = false;
    std::uint64_t nodes = 0;
    const bool ok = searcher.search(nodes, exhausted);
    res.nodes_explored += nodes;
    if (ok) {
      res.found = true;
      res.colors = k;
      res.coloring = searcher.coloring();
      PSL_ENSURES(is_conflict_free(h, res.coloring));
      return res;
    }
    if (exhausted) {
      res.budget_exhausted = true;
      return res;
    }
  }
  return res;
}

}  // namespace pslocal
