// Hypergraph splitting (Property B): 2-color the vertices so that no
// hyperedge is monochromatic.  "(Weak) local splittings" are on the
// paper's list of P-SLOCAL-complete problems ([GKM17], Section 1); we
// implement the hyperedge-non-monochromatic variant, which carries the
// class's signature difficulty: trivial with randomness (an edge of size
// s is monochromatic with probability 2^{1-s}, so random coloring works
// w.h.p. once s >= c log m), hard to derandomize locally.
//
// Algorithms:
//  * random_splitting — one fair coin per vertex; succeeds w.h.p. for
//    corank > log2(2m) (tests measure the failure rate below threshold).
//  * derandomized_splitting — the method of conditional expectations run
//    as an SLOCAL(1) algorithm: processing vertices in any order, each
//    vertex picks the color minimizing the conditional expected number of
//    monochromatic edges, a quantity computable from its incident edges'
//    partial states (locality 1 in the communication graph).  The
//    pessimistic estimator E = sum_e 2^{1-s_e} starts below 1 whenever
//    corank > log2(2m) and never increases, so the result is *always*
//    splitting-free under that promise — a microcosm of the
//    derandomization story the paper's completeness theorem serves.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace pslocal {

/// Vertex colors for splitting: false = red, true = blue.
using Splitting = std::vector<bool>;

/// True iff no hyperedge is monochromatic (edges of size 1 can never be
/// split; they make every splitting invalid).
bool is_valid_splitting(const Hypergraph& h, const Splitting& s);

/// Number of monochromatic edges under s.
std::size_t monochromatic_edge_count(const Hypergraph& h, const Splitting& s);

/// One fair coin per vertex.
Splitting random_splitting(const Hypergraph& h, Rng& rng);

struct DerandomizedSplittingResult {
  Splitting splitting;
  std::size_t locality = 0;        // measured SLOCAL locality (1)
  double initial_estimator = 0.0;  // sum_e 2^{1-|e|}
};

/// Conditional-expectations splitting along `order` (a permutation of V).
/// Postcondition: monochromatic count <= initial_estimator; in particular
/// a valid splitting whenever the estimator starts below 1.
DerandomizedSplittingResult derandomized_splitting(
    const Hypergraph& h, const std::vector<VertexId>& order);

/// The promise threshold: estimator < 1 iff "corank large enough".
double splitting_estimator(const Hypergraph& h);

struct MoserTardosResult {
  Splitting splitting;
  std::size_t resamples = 0;
  bool success = false;  // false iff the resample budget ran out
};

/// Moser–Tardos resampling: start from random coins; while a
/// monochromatic edge exists, re-flip exactly that edge's vertices.  By
/// the constructive Lovász Local Lemma this terminates in O(m) expected
/// resamples whenever e * 2^{1-s} * (D+1) <= 1, where s is the minimum
/// edge size and D the maximum number of other edges any edge intersects
/// — a *local* criterion that beats the union-bound threshold of
/// splitting_estimator when edges overlap sparsely.
MoserTardosResult moser_tardos_splitting(const Hypergraph& h, Rng& rng,
                                         std::size_t max_resamples = 100000);

/// The LLL criterion value e * 2^{1-corank} * (D+1); < 1 guarantees fast
/// termination.
double lll_criterion(const Hypergraph& h);

}  // namespace pslocal
