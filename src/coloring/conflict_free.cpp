#include "coloring/conflict_free.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace pslocal {

void CfMulticoloring::add_color(VertexId v, std::size_t c) {
  PSL_EXPECTS(v < colors_.size());
  PSL_EXPECTS_MSG(c >= 1, "CF colors are 1-based; 0 is reserved for ⊥");
  auto& cs = colors_[v];
  const auto it = std::lower_bound(cs.begin(), cs.end(), c);
  if (it == cs.end() || *it != c) cs.insert(it, c);
}

bool CfMulticoloring::has_color(VertexId v, std::size_t c) const {
  PSL_EXPECTS(v < colors_.size());
  const auto& cs = colors_[v];
  return std::binary_search(cs.begin(), cs.end(), c);
}

std::size_t CfMulticoloring::palette_size() const {
  std::set<std::size_t> used;
  for (const auto& cs : colors_) used.insert(cs.begin(), cs.end());
  return used.size();
}

std::size_t CfMulticoloring::max_color() const {
  std::size_t mx = 0;
  for (const auto& cs : colors_)
    if (!cs.empty()) mx = std::max(mx, cs.back());
  return mx;
}

std::size_t CfMulticoloring::assignment_count() const {
  std::size_t total = 0;
  for (const auto& cs : colors_) total += cs.size();
  return total;
}

void CfMulticoloring::absorb(const CfColoring& f, std::size_t palette_offset) {
  PSL_EXPECTS(f.size() == colors_.size());
  for (VertexId v = 0; v < f.size(); ++v)
    if (f[v] != kCfUncolored) add_color(v, palette_offset + f[v]);
}

bool is_edge_happy(const Hypergraph& h, EdgeId e, const CfColoring& f) {
  PSL_EXPECTS(f.size() == h.vertex_count());
  // Count occurrences of each color within the edge; happy iff some color
  // occurs exactly once.
  std::unordered_map<std::size_t, std::size_t> freq;
  for (VertexId v : h.edge(e))
    if (f[v] != kCfUncolored) ++freq[f[v]];
  return std::any_of(freq.begin(), freq.end(),
                     [](const auto& kv) { return kv.second == 1; });
}

bool is_edge_happy(const Hypergraph& h, EdgeId e, const CfMulticoloring& mc) {
  PSL_EXPECTS(mc.vertex_count() == h.vertex_count());
  std::unordered_map<std::size_t, std::size_t> freq;
  for (VertexId v : h.edge(e))
    for (std::size_t c : mc.colors_of(v)) ++freq[c];
  return std::any_of(freq.begin(), freq.end(),
                     [](const auto& kv) { return kv.second == 1; });
}

namespace {
template <typename ColoringT>
std::vector<bool> happy_edges_impl(const Hypergraph& h, const ColoringT& f) {
  std::vector<bool> happy(h.edge_count(), false);
  for (EdgeId e = 0; e < h.edge_count(); ++e)
    happy[e] = is_edge_happy(h, e, f);
  return happy;
}
}  // namespace

std::vector<bool> happy_edges(const Hypergraph& h, const CfColoring& f) {
  return happy_edges_impl(h, f);
}
std::vector<bool> happy_edges(const Hypergraph& h, const CfMulticoloring& mc) {
  return happy_edges_impl(h, mc);
}

std::size_t happy_edge_count(const Hypergraph& h, const CfColoring& f) {
  const auto flags = happy_edges(h, f);
  return static_cast<std::size_t>(std::count(flags.begin(), flags.end(), true));
}
std::size_t happy_edge_count(const Hypergraph& h, const CfMulticoloring& mc) {
  const auto flags = happy_edges(h, mc);
  return static_cast<std::size_t>(std::count(flags.begin(), flags.end(), true));
}

bool is_conflict_free(const Hypergraph& h, const CfColoring& f) {
  return happy_edge_count(h, f) == h.edge_count();
}
bool is_conflict_free(const Hypergraph& h, const CfMulticoloring& mc) {
  return happy_edge_count(h, mc) == h.edge_count();
}

std::size_t cf_color_count(const CfColoring& f) {
  std::set<std::size_t> used;
  for (auto c : f)
    if (c != kCfUncolored) used.insert(c);
  return used.size();
}

}  // namespace pslocal
