// Deterministic, seedable random number generation.
//
// Every randomized component of the library takes an explicit seed so that
// all experiments are reproducible bit-for-bit (DESIGN.md §6).  We ship our
// own xoshiro256** instead of std::mt19937_64 because its state is tiny,
// it is trivially splittable via SplitMix64, and its output sequence is
// specified (libstdc++'s distributions are not portable across versions —
// we implement the distributions we need ourselves).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace pslocal {

/// SplitMix64: used to seed xoshiro and to derive independent substreams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9b7fdc2f0a3c1d5eULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  /// Derive an independent substream; stream ids give distinct generators.
  [[nodiscard]] Rng split(std::uint64_t stream) const {
    SplitMix64 sm(s_[0] ^ (s_[3] + 0x632be59bd9b4e019ULL * (stream + 1)));
    Rng r(sm.next());
    return r;
  }

  /// Derive the `stream`-th child generator without advancing this one.
  /// Unlike split(), which funnels the child through a single 64-bit
  /// reseed, fork() fills the child's entire 256-bit state from a
  /// per-stream SplitMix64 sequence, the splittable-PRNG construction of
  /// Steele, Lea & Flood (OOPSLA 2014).  This is the API the parallel
  /// runtime uses for per-chunk streams (runtime/parallel.hpp); the
  /// non-correlation smoke test lives in test_rng.cpp.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    SplitMix64 sm(s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^
                  (0x9e3779b97f4a7c15ULL * (stream + 1)));
    Rng r;
    for (auto& w : r.s_) w = sm.next();
    // xoshiro256** requires a nonzero state (probability 2^-256 here).
    if ((r.s_[0] | r.s_[1] | r.s_[2] | r.s_[3]) == 0) r.s_[0] = 1;
    return r;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    PSL_EXPECTS(bound > 0);
    // Lemire's nearly-divisionless method with rejection for exactness.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    PSL_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) {
    PSL_EXPECTS(p >= 0.0 && p <= 1.0);
    return next_double() < p;
  }

  /// Exponential variate with rate `rate` (mean 1/rate).
  double next_exponential(double rate);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// k distinct values sampled uniformly from {0, ..., n-1} (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace pslocal
