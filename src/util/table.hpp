// ASCII table rendering for the experiment harnesses (bench/).
//
// Every experiment binary prints the same kind of paper-style table:
// a caption, a header row, and aligned data rows.  Centralizing the
// formatting keeps bench code focused on the experiment itself.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pslocal {

class Table {
 public:
  explicit Table(std::string caption) : caption_(std::move(caption)) {}

  /// Set the header row; must be called before adding rows.
  Table& header(std::vector<std::string> columns);

  /// Append a fully formatted row; must match the header arity.
  Table& row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::string& caption() const { return caption_; }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data_rows()
      const {
    return rows_;
  }

  /// Render with box-drawing separators and right-aligned numeric cells.
  [[nodiscard]] std::string render() const;

  /// RFC-4180-style CSV (header row + data rows; quotes cells containing
  /// commas or quotes).  For piping experiment output into plot scripts.
  [[nodiscard]] std::string render_csv() const;

  /// Convenience: render to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by the benches.
std::string fmt_double(double v, int precision = 3);
std::string fmt_ratio(double v, int precision = 3);
std::string fmt_size(std::size_t v);
std::string fmt_bool(bool v);

}  // namespace pslocal
