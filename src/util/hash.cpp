#include "util/hash.hpp"

#include "util/check.hpp"

namespace pslocal {

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::uint64_t parse_hex64(std::string_view s) {
  PSL_EXPECTS_MSG(s.size() == 16, "hex64 strings are exactly 16 digits");
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      PSL_CHECK_MSG(false, "invalid hex64 digit '" << c << "'");
  }
  return v;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  Fnv1a64 h;
  h.update_bytes(bytes.data(), bytes.size());
  return h.digest();
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  Fnv1a64 mix;
  mix.update_u64(h);
  mix.update_u64(v);
  return mix.digest();
}

std::uint64_t hash_graph(const Graph& g) {
  Fnv1a64 h;
  const std::size_t n = g.vertex_count();
  h.update_u64(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    h.update_u64(nbrs.size());
    for (const VertexId u : nbrs) h.update_u64(u);
  }
  return h.digest();
}

std::uint64_t hash_hypergraph(const Hypergraph& h) {
  Fnv1a64 hash;
  hash.update_u64(h.vertex_count());
  hash.update_u64(h.edge_count());
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto vs = h.edge(e);
    hash.update_u64(vs.size());
    for (const VertexId v : vs) hash.update_u64(v);
  }
  return hash.digest();
}

std::string canonical_bytes(const Hypergraph& h) {
  std::string out;
  const auto put_u64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out += static_cast<char>(v >> (8 * i));
  };
  put_u64(h.vertex_count());
  put_u64(h.edge_count());
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto vs = h.edge(e);
    put_u64(vs.size());
    for (const VertexId v : vs) put_u64(v);
  }
  return out;
}

}  // namespace pslocal
