#include "util/bitset.hpp"

#include <bit>

namespace pslocal {

void DynamicBitset::set_all() {
  for (auto& w : words_) w = ~0ULL;
  clear_padding();
}

void DynamicBitset::reset_all() {
  for (auto& w : words_) w = 0;
}

std::size_t DynamicBitset::count() const {
  std::size_t c = 0;
  for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DynamicBitset::any() const {
  for (auto w : words_)
    if (w) return true;
  return false;
}

std::size_t DynamicBitset::find_first(std::size_t from) const {
  if (from >= bits_) return bits_;
  std::size_t wi = from >> 6;
  std::uint64_t w = words_[wi] & (~0ULL << (from & 63));
  while (true) {
    if (w) {
      const auto bit = (wi << 6) +
                       static_cast<std::size_t>(std::countr_zero(w));
      return bit < bits_ ? bit : bits_;
    }
    if (++wi >= words_.size()) return bits_;
    w = words_[wi];
  }
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  PSL_EXPECTS(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  PSL_EXPECTS(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::andnot(const DynamicBitset& other) {
  PSL_EXPECTS(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  PSL_EXPECTS(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & other.words_[i]) return true;
  return false;
}

std::size_t DynamicBitset::intersection_count(
    const DynamicBitset& other) const {
  PSL_EXPECTS(bits_ == other.bits_);
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    c += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  return c;
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = find_first(); i < bits_; i = find_first(i + 1))
    out.push_back(i);
  return out;
}

void DynamicBitset::clear_padding() {
  const std::size_t rem = bits_ & 63;
  if (rem != 0 && !words_.empty()) words_.back() &= (~0ULL >> (64 - rem));
}

}  // namespace pslocal
