#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace pslocal {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  PSL_EXPECTS(!values.empty());
  PSL_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PSL_EXPECTS(hi > lo);
  PSL_EXPECTS(bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>(std::floor((x - lo_) / width));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bucket) const {
  PSL_EXPECTS(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    os << "[" << bucket_lo(b) << ", " << bucket_hi(b) << ") "
       << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  PSL_EXPECTS(x.size() == y.size());
  PSL_EXPECTS(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace pslocal
