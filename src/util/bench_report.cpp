#include "util/bench_report.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "runtime/global.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace pslocal {

namespace {

std::string json_escape(const std::string& s) { return json::escape(s); }

/// True iff strtod consumes the whole cell — i.e. the cell is already a
/// valid JSON number ("12", "-0.5", "1e3"), as opposed to decorated
/// numerics like "1.500x" or "75%", which stay strings.
bool is_plain_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() && std::isfinite(v);
}

std::string cell_to_json(const std::string& cell) {
  if (is_plain_number(cell)) return cell;
  return '"' + json_escape(cell) + '"';
}

std::string double_to_json(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// The "obs" section: counters/gauges/histograms snapshot, taken when
// the report serializes.  Histogram buckets are emitted sparsely as
// [inclusive_upper_bound, count] pairs.
void append_obs_section(std::ostringstream& os) {
  const obs::Snapshot snap = obs::snapshot();
  os << "  \"obs\": {\n    \"counters\": {";
  std::size_t i = 0;
  for (const auto& [name, value] : snap.counters)
    os << (i++ ? ", " : "") << '"' << json_escape(name) << "\": " << value;
  os << "},\n    \"gauges\": {";
  i = 0;
  for (const auto& [name, value] : snap.gauges)
    os << (i++ ? ", " : "") << '"' << json_escape(name) << "\": " << value;
  os << "},\n    \"histograms\": {";
  i = 0;
  for (const auto& [name, h] : snap.histograms) {
    os << (i++ ? "," : "") << "\n      \"" << json_escape(name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"min\": " << h.min << ", \"max\": " << h.max
       << ", \"mean\": " << double_to_json(h.mean()) << ", \"buckets\": [";
    std::size_t b = 0;
    for (std::size_t k = 0; k < obs::HistogramSnapshot::kBuckets; ++k) {
      if (h.buckets[k] == 0) continue;
      os << (b++ ? ", " : "") << '[' << obs::histogram_bucket_upper(k)
         << ", " << h.buckets[k] << ']';
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "}" : "\n    }") << "\n  }";
}

}  // namespace

void apply_thread_option(const Options& opts) {
  if (opts.has("threads"))
    runtime::set_global_thread_count(
        static_cast<std::size_t>(opts.get_int("threads", 0)));
  const std::string trace = opts.trace_out();
  if (!trace.empty()) obs::start_tracing(trace);
}

BenchReport::BenchReport(std::string name, const Options& opts)
    : name_(std::move(name)), json_out_(opts.json_out()) {
  for (const auto& [key, value] : opts.values())
    options_.emplace_back(key, cell_to_json(value));
  // Record the *effective* worker count, so a run without --threads is
  // still fully described by its JSON.
  if (!opts.has("threads"))
    options_.emplace_back(
        "threads", std::to_string(runtime::global_thread_count()));
}

BenchReport& BenchReport::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, double_to_json(value));
  return *this;
}

BenchReport& BenchReport::metric(const std::string& key,
                                 const std::string& value) {
  metrics_.emplace_back(key, '"' + json_escape(value) + '"');
  return *this;
}

BenchReport& BenchReport::metric_json(const std::string& key,
                                      const std::string& raw) {
  metrics_.emplace_back(key, raw.empty() ? "null" : raw);
  return *this;
}

BenchReport& BenchReport::add_table(const Table& t) {
  tables_.push_back({t.caption(), t.columns(), t.data_rows()});
  return *this;
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"bench\": \"" << json_escape(name_) << "\",\n";
  os << "  \"options\": {";
  for (std::size_t i = 0; i < options_.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(options_[i].first)
       << "\": " << options_[i].second;
  }
  os << "},\n  \"metrics\": {";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(metrics_[i].first)
       << "\": " << metrics_[i].second;
  }
  os << "},\n  \"tables\": [";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const auto& tab = tables_[t];
    os << (t ? "," : "") << "\n    {\n      \"caption\": \""
       << json_escape(tab.caption) << "\",\n      \"columns\": [";
    for (std::size_t c = 0; c < tab.columns.size(); ++c)
      os << (c ? ", " : "") << '"' << json_escape(tab.columns[c]) << '"';
    os << "],\n      \"rows\": [";
    for (std::size_t r = 0; r < tab.rows.size(); ++r) {
      os << (r ? "," : "") << "\n        [";
      for (std::size_t c = 0; c < tab.rows[r].size(); ++c)
        os << (c ? ", " : "") << cell_to_json(tab.rows[r][c]);
      os << ']';
    }
    os << (tab.rows.empty() ? "]" : "\n      ]") << "\n    }";
  }
  os << (tables_.empty() ? "]" : "\n  ]") << ",\n";
  append_obs_section(os);
  os << "\n}";
  return os.str();
}

std::string BenchReport::write() const {
  // Close a --trace-out session first so the trace lands even when the
  // JSON report itself is suppressed with --json-out=none.
  obs::finish_tracing();
  std::string path = json_out_.empty() ? "BENCH_" + name_ + ".json"
                                       : json_out_;
  if (path == "none") return "";
  std::ofstream out(path);
  PSL_CHECK_MSG(out.good(), "cannot open --json-out path " << path);
  out << to_json() << '\n';
  return path;
}

}  // namespace pslocal
