#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace pslocal {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) digit = true;
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != 'x' && c != '%' && c != ',')
      return false;
  }
  return digit;
}
}  // namespace

Table& Table::header(std::vector<std::string> columns) {
  PSL_EXPECTS(rows_.empty());
  header_ = std::move(columns);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  PSL_EXPECTS_MSG(cells.size() == header_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells, bool align_right) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool right = align_right && looks_numeric(cells[c]);
      os << ' ' << (right ? std::setiosflags(std::ios::right)
                          : std::setiosflags(std::ios::left))
         << std::setw(static_cast<int>(widths[c])) << cells[c]
         << std::resetiosflags(std::ios::adjustfield) << " |";
    }
    os << '\n';
  };

  if (!caption_.empty()) os << "== " << caption_ << " ==\n";
  hline();
  emit(header_, /*align_right=*/false);
  hline();
  for (const auto& r : rows_) emit(r, /*align_right=*/true);
  hline();
  return os.str();
}

std::string Table::render_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_ratio(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << "x";
  return os.str();
}

std::string fmt_size(std::size_t v) { return std::to_string(v); }

std::string fmt_bool(bool v) { return v ? "yes" : "no"; }

}  // namespace pslocal
