// Lightweight contract checking used across the library.
//
// The C++ Core Guidelines (I.6/I.8, E.12) recommend stating preconditions
// and postconditions explicitly.  We use throwing checks rather than
// assert() so that violated contracts are observable in release builds,
// which matters for a research artifact whose whole point is validating
// invariants (Lemma 2.1, phase bounds, ...).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pslocal {

/// Thrown when a precondition or invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace pslocal

/// Precondition check: use at function entry to validate arguments.
#define PSL_EXPECTS(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::pslocal::detail::contract_fail("Precondition", #cond, __FILE__,       \
                                       __LINE__, "");                         \
  } while (0)

/// Precondition check with an explanatory message (streamed into a string).
#define PSL_EXPECTS_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream psl_os_;                                             \
      psl_os_ << msg;                                                         \
      ::pslocal::detail::contract_fail("Precondition", #cond, __FILE__,       \
                                       __LINE__, psl_os_.str());              \
    }                                                                         \
  } while (0)

/// Invariant / internal-consistency check.
#define PSL_CHECK(cond)                                                       \
  do {                                                                        \
    if (!(cond))                                                              \
      ::pslocal::detail::contract_fail("Check", #cond, __FILE__, __LINE__,    \
                                       "");                                   \
  } while (0)

#define PSL_CHECK_MSG(cond, msg)                                              \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream psl_os_;                                             \
      psl_os_ << msg;                                                         \
      ::pslocal::detail::contract_fail("Check", #cond, __FILE__, __LINE__,    \
                                       psl_os_.str());                        \
    }                                                                         \
  } while (0)

/// Postcondition check: use before returning to validate results.
#define PSL_ENSURES(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::pslocal::detail::contract_fail("Postcondition", #cond, __FILE__,      \
                                       __LINE__, "");                         \
  } while (0)
