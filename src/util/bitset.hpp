// Dynamic bitset tuned for set operations on vertex sets.
//
// std::vector<bool> lacks word-level access and popcount; exact MaxIS
// branch-and-bound (src/mis/exact_maxis.*) spends nearly all its time in
// intersect/andnot/popcount loops, so we provide them directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace pslocal {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return bits_; }
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }

  void set(std::size_t i) {
    PSL_EXPECTS(i < bits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }
  void reset(std::size_t i) {
    PSL_EXPECTS(i < bits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  [[nodiscard]] bool test(std::size_t i) const {
    PSL_EXPECTS(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set_all();
  void reset_all();

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] bool any() const;
  [[nodiscard]] bool none() const { return !any(); }

  /// First set bit at or after `from`, or size() if none.
  [[nodiscard]] std::size_t find_first(std::size_t from = 0) const;

  /// this &= other / this |= other / this &= ~other (sizes must match).
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& andnot(const DynamicBitset& other);

  [[nodiscard]] bool intersects(const DynamicBitset& other) const;
  [[nodiscard]] std::size_t intersection_count(
      const DynamicBitset& other) const;

  [[nodiscard]] bool operator==(const DynamicBitset& other) const = default;

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

 private:
  void clear_padding();

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pslocal
