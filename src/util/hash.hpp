// Canonical serialization and content hashing.
//
// The serving subsystem (src/service/) addresses cached solver results by
// the *content* of their inputs, so two structurally identical instances
// hit the same cache line no matter how they were built.  That requires a
// canonical byte encoding: every multi-byte integer is emitted
// little-endian at a fixed width, containers are length-prefixed, and
// graph/hypergraph encodings walk the (already sorted) adjacency data in
// index order.  The hash is FNV-1a 64 over that stream — tiny, portable,
// and byte-order stable across platforms, which keeps cache keys and
// replay files comparable between runs and machines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace pslocal {

/// Streaming FNV-1a 64-bit hasher over a canonical byte encoding.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ULL;

  void update_byte(std::uint8_t b) {
    h_ = (h_ ^ b) * kPrime;
  }

  void update_bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < len; ++i) update_byte(p[i]);
  }

  /// Fixed-width little-endian encoding (canonical across platforms).
  void update_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) update_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// Length-prefixed, so {"ab","c"} and {"a","bc"} hash differently.
  void update_string(std::string_view s) {
    update_u64(s.size());
    update_bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

/// One-shot convenience over raw bytes.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// SplitMix64-style 64-bit finalizer (Stafford/Vigna mixing constants,
/// gamma added up front so 0 is not a fixed point).  A bijection on
/// uint64 whose output bits avalanche: flipping any input bit flips each
/// output bit with probability ~1/2.  The shard ring derives its
/// virtual-node points through this (shard/ring.hpp) because FNV digests
/// of related inputs share prefixes — mix64 decorrelates them.  Pinned
/// against SplitMix64 and an avalanche property in qc (`mix64_avalanche`).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix an extra word into an existing digest (for composite cache keys:
/// instance hash ∘ solver id ∘ params).  Order-sensitive.
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v);

/// Content hash of a graph: vertex count, then the CSR adjacency in
/// vertex order.  Equal graphs (Graph::operator==) hash equal.
[[nodiscard]] std::uint64_t hash_graph(const Graph& g);

/// Content hash of a hypergraph: vertex count, edge count, then each
/// edge's sorted vertex list in edge-id order.  restrict_edges results
/// hash by their own content, not their provenance.
[[nodiscard]] std::uint64_t hash_hypergraph(const Hypergraph& h);

/// Fixed-width lowercase hex of a 64-bit word ("00000000000000ff").
/// Digests cross process boundaries as hex because JSON numbers (doubles)
/// cannot carry 64 bits exactly.
[[nodiscard]] std::string hex64(std::uint64_t v);

/// Inverse of hex64; PSL_CHECKs the format.
[[nodiscard]] std::uint64_t parse_hex64(std::string_view s);

/// The canonical byte encoding behind hash_hypergraph, materialized.
/// Used by tests to pin the encoding and by anything that needs the
/// serialized form itself rather than its digest.
[[nodiscard]] std::string canonical_bytes(const Hypergraph& h);

}  // namespace pslocal
