#include "util/rng.hpp"

#include <cmath>
#include <numeric>
#include <unordered_set>

namespace pslocal {

double Rng::next_exponential(double rate) {
  PSL_EXPECTS(rate > 0.0);
  // Inverse CDF; 1 - u avoids log(0).
  return -std::log1p(-next_double()) / rate;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  shuffle(p);
  return p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  PSL_EXPECTS(k <= n);
  if (k == 0) return {};
  // For dense samples do a partial Fisher–Yates; for sparse ones use
  // Floyd's algorithm to avoid materializing {0..n-1}.
  if (k * 3 >= n) {
    std::vector<std::size_t> p = permutation(n);
    p.resize(k);
    return p;
  }
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(next_below(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace pslocal
