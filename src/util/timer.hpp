// Minimal wall-clock timer for the experiment harnesses.
#pragma once

#include <chrono>

namespace pslocal {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_millis() const {
    return elapsed_seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pslocal
