// Minimal wall-clock timer for the experiment harnesses.
//
// now_ns() is THE monotonic clock of the repository: obs spans, the
// trace writer and the bench timers all read it, so timestamps from
// different layers are directly comparable within a process.
#pragma once

#include <chrono>
#include <cstdint>

namespace pslocal {

/// Monotonic timestamp in nanoseconds (steady_clock since its epoch).
/// Only differences are meaningful; never compare across processes.
[[nodiscard]] inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class WallTimer {
 public:
  WallTimer() : start_(now_ns()) {}

  void reset() { start_ = now_ns(); }

  [[nodiscard]] std::uint64_t elapsed_nanos() const {
    return now_ns() - start_;
  }

  [[nodiscard]] double elapsed_seconds() const {
    return static_cast<double>(elapsed_nanos()) * 1e-9;
  }

  [[nodiscard]] double elapsed_millis() const {
    return static_cast<double>(elapsed_nanos()) * 1e-6;
  }

 private:
  std::uint64_t start_;
};

}  // namespace pslocal
