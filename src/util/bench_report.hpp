// Machine-readable counterpart of the ASCII experiment tables.
//
// Every bench binary renders human-readable tables (util/table) *and*
// writes one JSON trajectory file so plots and regression tracking never
// have to scrape box-drawing output.  Schema:
//
//   {
//     "bench": "<name>",
//     "options": { "seed": 1, "threads": 4, ... },   // CLI verbatim +
//                                                    // effective threads
//     "metrics": { "fit_slope": 1.98, ... },         // scalar summaries
//     "tables": [
//       { "caption": "...", "columns": [...], "rows": [[...], ...] }
//     ],
//     "obs": {                       // obs snapshot taken at write time
//       "counters": { "runtime.steals": 12, ... },
//       "gauges": { ... },
//       "histograms": { "slocal.locality": { "count": ..., "sum": ...,
//         "min": ..., "max": ..., "buckets": [[le, count], ...] } }
//     }
//   }
//
// Cells that look like plain numbers are emitted as JSON numbers, all
// other cells as strings.  Default output path is BENCH_<name>.json in
// the working directory; --json-out=<path> overrides it and
// --json-out=none suppresses the file.  The "obs" section carries the
// process-wide counters/histograms of src/obs/ (empty maps when the
// build has -DPSLOCAL_OBS=OFF), so every trajectory file records the
// runtime/engine internals of the run that produced it.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/options.hpp"
#include "util/table.hpp"

namespace pslocal {

/// Apply the runtime-affecting CLI options to the process: --threads=N
/// resizes the global scheduler (0 = hardware_concurrency) and
/// --trace-out=<path> starts an obs trace session whose Chrome trace
/// JSON is written by BenchReport::write() (or obs::finish_tracing()).
/// Call once at the top of main, before any timed work.  Without the
/// flags the global pool stays sequential and no trace is recorded.
void apply_thread_option(const Options& opts);

class BenchReport {
 public:
  /// `name` is the trajectory key: the file becomes BENCH_<name>.json.
  BenchReport(std::string name, const Options& opts);

  /// Record a scalar summary metric (NaN/inf serialize as null).
  BenchReport& metric(const std::string& key, double value);
  BenchReport& metric(const std::string& key, const std::string& value);

  /// Record a metric whose value is already JSON (object/array), spliced
  /// in verbatim — how the shard bench embeds live stats-scrape payloads
  /// (docs/tracing.md) without double-escaping them into strings.
  BenchReport& metric_json(const std::string& key, const std::string& raw);

  /// Snapshot a finished table (caption, columns, rows).
  BenchReport& add_table(const Table& t);

  /// Serialize the full report (no trailing newline).
  [[nodiscard]] std::string to_json() const;

  /// Write to the resolved path (see header comment); returns the path,
  /// or "" when writing was suppressed with --json-out=none.
  std::string write() const;

 private:
  struct Snapshot {
    std::string caption;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  std::string name_;
  std::string json_out_;                 // from --json-out ("" = default)
  std::vector<std::pair<std::string, std::string>> options_;  // verbatim
  std::vector<std::pair<std::string, std::string>> metrics_;  // key → JSON
  std::vector<Snapshot> tables_;
};

}  // namespace pslocal
