// Tiny command-line option parser for examples and benches.
//
// Supports `--name=value` and `--flag`; anything else is a positional.
// Deliberately minimal: experiment binaries only need a handful of knobs
// (seed, sizes, lambda) and must not pull in a heavyweight dependency.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace pslocal {

class Options {
 public:
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  /// Worker-thread count requested with --threads (0 = use
  /// hardware_concurrency; fallback when the flag is absent).
  [[nodiscard]] long threads(long fallback = 1) const {
    return get_int("threads", fallback);
  }

  /// Output path requested with --json-out; empty = use the caller's
  /// default (benches write BENCH_<name>.json).
  [[nodiscard]] std::string json_out() const {
    return get_string("json-out", "");
  }

  /// Chrome trace-event output path requested with --trace-out; empty =
  /// no trace session (docs/observability.md).
  [[nodiscard]] std::string trace_out() const {
    return get_string("trace-out", "");
  }

  /// All parsed --name=value pairs, verbatim (for report provenance).
  [[nodiscard]] const std::map<std::string, std::string>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace pslocal
