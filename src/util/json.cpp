#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pslocal::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool Value::has(const std::string& key) const {
  PSL_EXPECTS(is_object());
  for (const auto& [k, v] : object_)
    if (k == key) return true;
  return false;
}

const Value& Value::at(const std::string& key) const {
  PSL_EXPECTS(is_object());
  for (const auto& [k, v] : object_)
    if (k == key) return v;
  PSL_CHECK_MSG(false, "json: missing key '" << key << "'");
  std::abort();  // unreachable; PSL_CHECK_MSG throws/aborts
}

const Value& Value::at(std::size_t index) const {
  PSL_EXPECTS(is_array());
  PSL_CHECK_MSG(index < array_.size(),
                "json: index " << index << " out of range "
                               << array_.size());
  return array_[index];
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    PSL_CHECK_MSG(pos_ == text_.size(),
                  "json: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    PSL_CHECK_MSG(false, "json: " << what << " at offset " << pos_);
    std::abort();
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail("unexpected character");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  // Containers recurse through parse_value; depth_ bounds the recursion
  // so a pathological replay/bench file ("[[[[...") fails a PSL_CHECK
  // instead of overflowing the stack.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      ++parser.depth_;
      if (parser.depth_ > kMaxDepth) parser.fail("nesting too deep");
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind_ = Value::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind_ = Value::Kind::kBool;
        if (consume_literal("true"))
          v.bool_ = true;
        else if (consume_literal("false"))
          v.bool_ = false;
        else
          fail("invalid literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    Value v;
    v.kind_ = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  Value parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    Value v;
    v.kind_ = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.array_.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        PSL_CHECK_MSG(static_cast<unsigned char>(c) >= 0x20,
                      "json: raw control character at offset " << pos_);
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            cp <<= 4;
            if (h >= '0' && h <= '9')
              cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape");
          }
          // The emitters only \u-escape control characters; decode the
          // BMP without surrogate-pair handling, which suffices here.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t count = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++count;
      }
      return count;
    };
    if (digits() == 0) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail("invalid number");
    }
    const double parsed =
        std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                    nullptr);
    // Overflowing literals ("1e999") would surface as +/-inf, which no
    // emitter in this repository produces (they write null); normalize
    // the overflow to null instead of propagating a non-JSON value.
    if (!std::isfinite(parsed)) return Value{};
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.number_ = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;  // live container nesting depth
};

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path);
  PSL_CHECK_MSG(in.good(), "json: cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace pslocal::json
