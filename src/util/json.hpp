// Minimal recursive-descent JSON parser.
//
// Originally a verification tool for what the repository emits —
// BenchReport files and Chrome trace-event files — it now also sits on
// the serving path: service replay files (service/workload.hpp) are
// parsed with it.  It parses strict JSON (the subset the emitters
// produce plus standard escapes) and is hardened against pathological
// inputs: container nesting is bounded by kMaxDepth, overflowing number
// literals parse as null, and trailing garbage after the document is
// rejected.  Malformed input fails a PSL_CHECK with position
// information.  Emitters keep writing JSON directly (via escape()); this
// is not a serialization framework.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace pslocal::json {

/// Maximum container nesting depth parse() accepts.  The parser recurses
/// per nesting level, so the bound turns adversarial inputs ("[[[[…")
/// into a clean PSL_CHECK failure instead of a stack overflow.  Every
/// emitter in the repository nests a handful of levels; 256 is far above
/// any legitimate document and far below any stack limit.
inline constexpr std::size_t kMaxDepth = 256;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const {
    PSL_EXPECTS(is_bool());
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    PSL_EXPECTS(is_number());
    return number_;
  }
  [[nodiscard]] const std::string& as_string() const {
    PSL_EXPECTS(is_string());
    return string_;
  }
  [[nodiscard]] const std::vector<Value>& as_array() const {
    PSL_EXPECTS(is_array());
    return array_;
  }
  /// Object members in source order (duplicate keys keep both).
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const {
    PSL_EXPECTS(is_object());
    return object_;
  }

  [[nodiscard]] bool has(const std::string& key) const;
  /// Member lookup; PSL_CHECKs that the key exists.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// Array element; PSL_CHECKs the index.
  [[nodiscard]] const Value& at(std::size_t index) const;

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Escape a string for embedding inside a JSON string literal (the
/// surrounding quotes are NOT added).  The single escaping routine shared
/// by every emitter in the repository, so emitted files always re-parse.
[[nodiscard]] std::string escape(std::string_view s);

/// Parse one JSON document (trailing whitespace allowed, nothing else).
[[nodiscard]] Value parse(std::string_view text);

/// Parse the contents of a file (PSL_CHECKs readability).
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace pslocal::json
