// Minimal recursive-descent JSON parser.
//
// Exists so tests can *validate* what the repository emits — BenchReport
// files and Chrome trace-event files — without scraping strings or
// pulling in an external dependency.  It parses strict JSON (the subset
// the emitters produce plus standard escapes); malformed input fails a
// PSL_CHECK with position information.  It is a verification tool, not
// a serialization framework: emitters keep writing JSON directly.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace pslocal::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const {
    PSL_EXPECTS(is_bool());
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    PSL_EXPECTS(is_number());
    return number_;
  }
  [[nodiscard]] const std::string& as_string() const {
    PSL_EXPECTS(is_string());
    return string_;
  }
  [[nodiscard]] const std::vector<Value>& as_array() const {
    PSL_EXPECTS(is_array());
    return array_;
  }
  /// Object members in source order (duplicate keys keep both).
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const {
    PSL_EXPECTS(is_object());
    return object_;
  }

  [[nodiscard]] bool has(const std::string& key) const;
  /// Member lookup; PSL_CHECKs that the key exists.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// Array element; PSL_CHECKs the index.
  [[nodiscard]] const Value& at(std::size_t index) const;

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parse one JSON document (trailing whitespace allowed, nothing else).
[[nodiscard]] Value parse(std::string_view text);

/// Parse the contents of a file (PSL_CHECKs readability).
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace pslocal::json
