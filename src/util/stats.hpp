// Streaming and batch statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace pslocal {

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 if fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const Accumulator& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// p-th percentile (0 <= p <= 100) with linear interpolation.
/// Copies and sorts internally; fine for experiment-sized data.
double percentile(std::vector<double> values, double p);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

  /// Simple ASCII rendering, one line per bucket.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Least-squares fit y = a + b*x; returns {a, b}. Used by the experiment
/// harnesses to report empirical growth rates.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

}  // namespace pslocal
