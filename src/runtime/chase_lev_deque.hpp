// Chase–Lev work-stealing deque [Chase & Lev, SPAA 2005] in the C11
// formulation of Lê, Pop, Cohen & Zappa Nardelli, "Correct and Efficient
// Work-Stealing for Weakly Ordered Memory Models" (PPoPP 2013).  We use
// their sequentially-consistent variant (seq_cst on the bottom/top
// synchronization points) rather than the fence-optimized one:
// standalone atomic_thread_fence is invisible to ThreadSanitizer, and a
// TSan-clean runtime (CMake option PSLOCAL_TSAN) is part of this
// library's CI contract.  The cost is one seq_cst store per owner pop on
// the empty-check path — noise next to a chunk of real work.
//
// Single owner, many thieves: the owner pushes and pops at the bottom
// (LIFO, cache-friendly for the lazy-binary-splitting ranges the thread
// pool stores here), thieves steal from the top (FIFO, so they grab the
// largest unsplit ranges first).  The circular buffer grows on demand;
// retired buffers are kept on a free list until the deque dies because a
// concurrent thief may still be reading a stale buffer pointer.
//
// Elements are raw std::uint64_t payloads (the pool packs a chunk range
// into one word) so every cell fits a lock-free atomic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace pslocal::runtime {

class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : buffer_(new Buffer(round_up_pow2(initial_capacity))) {
    retired_.emplace_back(buffer_.load(std::memory_order_relaxed));
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() = default;  // retired_ owns every buffer ever used

  /// Owner only: push one item at the bottom.
  void push(std::uint64_t item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop the most recently pushed item.
  std::optional<std::uint64_t> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // deque was already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    std::uint64_t item = buf->get(b);
    if (t == b) {
      // Last element: race against thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal the oldest item.
  std::optional<std::uint64_t> steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return std::nullopt;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    const std::uint64_t item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race to the owner or another thief
    }
    return item;
  }

  /// Racy size hint (monitoring only).
  [[nodiscard]] std::size_t size_hint() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap) : capacity(cap), cells(cap) {}
    const std::size_t capacity;  // power of two
    std::vector<std::atomic<std::uint64_t>> cells;

    [[nodiscard]] std::uint64_t get(std::int64_t i) const {
      return cells[static_cast<std::size_t>(i) & (capacity - 1)].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, std::uint64_t v) {
      cells[static_cast<std::size_t>(i) & (capacity - 1)].store(
          v, std::memory_order_relaxed);
    }
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 8;
    while (p < v) p <<= 1;
    return p;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Buffer* raw = bigger.get();
    retired_.push_back(std::move(bigger));
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  // Owner-only mutation (push path); keeps old buffers alive for stale
  // readers.  Never shrinks — deque lifetime is the pool's lifetime.
  std::vector<std::unique_ptr<Buffer>> retired_;
};

}  // namespace pslocal::runtime
