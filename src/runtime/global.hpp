// The process-global scheduler.
//
// Library entry points take `runtime::Scheduler& sched =
// runtime::global_scheduler()`.  The global starts as a single-lane pool
// (fully sequential — the pre-runtime behavior); binaries opt into
// parallelism via `--threads N` (util/options) and a call to
// set_global_thread_count at startup, before any parallel work.
#pragma once

#include <cstddef>

#include "runtime/scheduler.hpp"

namespace pslocal::runtime {

/// The global scheduler; a 1-lane pool until configured otherwise.
[[nodiscard]] Scheduler& global_scheduler();

/// Resize the global pool to `threads` lanes (0 = hardware_concurrency).
/// Not thread-safe against concurrent global_scheduler() users: call it
/// from main() during startup, as the bench/example binaries do.
void set_global_thread_count(std::size_t threads);

/// Lanes of the current global pool.
[[nodiscard]] std::size_t global_thread_count();

}  // namespace pslocal::runtime
