#include "runtime/global.hpp"

#include <memory>
#include <thread>

#include "runtime/thread_pool.hpp"

namespace pslocal::runtime {

namespace {
std::unique_ptr<ThreadPool>& global_pool() {
  // Default to one lane, not hardware_concurrency: a library must not
  // spawn threads unless the binary asked for them (--threads).
  static std::unique_ptr<ThreadPool> pool =
      std::make_unique<ThreadPool>(1);
  return pool;
}
}  // namespace

Scheduler& global_scheduler() { return *global_pool(); }

void set_global_thread_count(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (global_pool()->thread_count() == threads) return;
  global_pool() = std::make_unique<ThreadPool>(threads);
}

std::size_t global_thread_count() {
  return global_pool()->thread_count();
}

}  // namespace pslocal::runtime
