// Scheduler: the execution-policy seam of the parallel runtime.
//
// Every parallel algorithm in the library is written against this
// interface and takes a `runtime::Scheduler&` (defaulting to the global
// pool, see runtime/global.hpp).  The determinism contract, relied on by
// every seeded experiment E1–E10:
//
//   1. An index range [0, n) is cut into chunks whose boundaries depend
//      ONLY on (n, grain) — never on the thread count or on timing.
//      Chunk i covers [i*grain, min(n, (i+1)*grain)).
//   2. Each chunk is executed exactly once, by some thread, in some
//      order.  Chunk bodies may not touch state shared with other chunks
//      (other than distinct output slots indexed by chunk or element).
//   3. Order-sensitive combining (reductions, concatenation of per-chunk
//      output) happens in ascending chunk order, after all chunks ran.
//
// Under these rules the result of any runtime primitive is bit-identical
// across thread counts and across repeated runs — see
// tests/test_parallel_determinism.cpp and docs/runtime.md.
#pragma once

#include <cstddef>
#include <functional>

#include "util/check.hpp"

namespace pslocal::runtime {

/// One scheduled chunk of an index range (see determinism contract above).
struct ChunkRange {
  std::size_t begin = 0;  // first element
  std::size_t end = 0;    // one past the last element
  std::size_t index = 0;  // chunk ordinal: begin / grain
};

/// Number of chunks of [0, n) under the given grain.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  PSL_EXPECTS(grain > 0);
  return (n + grain - 1) / grain;
}

/// Default grain for an n-element loop.  Deliberately a function of n
/// alone (never of the thread count): chunk boundaries — and hence every
/// deterministic reduction — stay fixed when --threads changes.  The
/// curve keeps small loops in one chunk and caps the chunk count so the
/// per-chunk scheduling overhead stays ~0.1% of the work.
inline std::size_t default_grain(std::size_t n) {
  if (n <= 2048) return n == 0 ? 1 : n;
  std::size_t g = n / 256;  // at most 256 chunks
  if (g > 16384) g = 16384;
  return g;
}

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Worker lanes available (1 = sequential execution).
  [[nodiscard]] virtual std::size_t thread_count() const = 0;

  /// Execute `body` once per chunk of [0, n) with the given grain.
  /// Blocks until every chunk ran; rethrows the first chunk exception.
  virtual void run_chunks(std::size_t n, std::size_t grain,
                          const std::function<void(ChunkRange)>& body) = 0;
};

/// Runs chunks in ascending order on the calling thread.  The reference
/// implementation of the contract: any Scheduler must produce results
/// bit-identical to this one.
class SequentialScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::size_t thread_count() const override { return 1; }

  void run_chunks(std::size_t n, std::size_t grain,
                  const std::function<void(ChunkRange)>& body) override {
    PSL_EXPECTS(grain > 0);
    for (std::size_t begin = 0, index = 0; begin < n;
         begin += grain, ++index) {
      const std::size_t end = begin + grain < n ? begin + grain : n;
      body(ChunkRange{begin, end, index});
    }
  }
};

}  // namespace pslocal::runtime
