// Work-stealing thread pool (the production Scheduler).
//
// Architecture (docs/runtime.md has the full walkthrough):
//
//  * A pool with `threads` lanes owns `threads - 1` persistent worker
//    threads; lane 0 belongs to whichever thread calls run_chunks, so a
//    pool of 1 lane is exactly the SequentialScheduler and spawns
//    nothing.
//  * Per parallel region, the chunk index space is pre-partitioned into
//    one contiguous block per lane, published in claimable "seed" slots.
//    A lane claims its own seed, pushes it onto its Chase–Lev deque and
//    works LIFO, splitting ranges in half (lazy binary splitting) so
//    thieves can take the far half from the top.
//  * Idle lanes first raid other lanes' deques, then unclaimed seed
//    slots, so a region finishes even if a worker never wakes up for it
//    (the caller alone can drain everything).
//  * Determinism: the pool only decides WHERE and WHEN a chunk runs;
//    chunk boundaries and all combining order are fixed by the contract
//    in runtime/scheduler.hpp, so outputs are bit-identical at every
//    thread count.
//  * Exceptions: the first chunk exception is captured, the remaining
//    chunks are drained without running their bodies, and the exception
//    is rethrown on the caller.  The pool stays usable afterwards.
//  * Nested parallelism: run_chunks from inside a worker runs the inner
//    region sequentially inline (no deadlock, no oversubscription).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/chase_lev_deque.hpp"
#include "runtime/scheduler.hpp"

namespace pslocal::runtime {

class ThreadPool final : public Scheduler {
 public:
  /// A pool with `threads` lanes (0 = std::thread::hardware_concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const override {
    return lanes_.size();
  }

  void run_chunks(std::size_t n, std::size_t grain,
                  const std::function<void(ChunkRange)>& body) override;

  /// Total chunks ever stolen across lanes (monitoring; racy read).
  [[nodiscard]] std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  // A range of chunk indices [begin, end) packed into one deque word.
  static constexpr std::uint64_t kNoRange = ~std::uint64_t{0};
  static std::uint64_t pack(std::uint64_t begin, std::uint64_t end) {
    return (begin << 32) | end;
  }
  static std::uint64_t range_begin(std::uint64_t r) { return r >> 32; }
  static std::uint64_t range_end(std::uint64_t r) {
    return r & 0xffffffffULL;
  }

  struct Lane {
    ChaseLevDeque deque;
    // Per-region seed block, claimable by any lane (owner preferred).
    std::atomic<std::uint64_t> seed{kNoRange};
  };

  void worker_main(std::size_t lane);
  void participate(std::size_t lane);
  void execute_range(std::size_t lane, std::uint64_t range);
  void run_one_chunk(std::size_t chunk);
  void run_sequential(std::size_t n, std::size_t grain,
                      const std::function<void(ChunkRange)>& body);
  bool try_acquire_work(std::size_t lane);

  // --- region state (rewritten under start_mu_ before each epoch bump;
  //     read by lanes only after acquiring work through an atomic claim,
  //     which orders the reads after the release stores below).
  std::atomic<std::size_t> n_{0};
  std::atomic<std::size_t> grain_{1};
  std::atomic<std::size_t> total_chunks_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<const std::function<void(ChunkRange)>*> body_{nullptr};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  std::mutex error_mu_;

  // --- pool state
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;
  std::mutex start_mu_;  // serializes external run_chunks callers
  std::mutex epoch_mu_;
  std::condition_variable epoch_cv_;
  std::uint64_t epoch_ = 0;  // guarded by epoch_mu_
  bool stop_ = false;        // guarded by epoch_mu_
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<std::size_t> active_{0};  // lanes currently inside participate
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace pslocal::runtime
