#include "runtime/thread_pool.hpp"

#include <chrono>

#include "obs/obs.hpp"
#include "util/timer.hpp"

namespace pslocal::runtime {

namespace {
// Set while a thread is executing pool work (worker thread, or the caller
// inside participate()).  Nested run_chunks sees it and runs inline.
thread_local bool tl_inside_pool = false;

// Pool instrumentation (docs/observability.md, "runtime.*").  The
// deterministic ones — regions, chunks, region_chunks — are invariant
// across thread counts; steals / busy_ns / steal metrics describe the
// actual schedule of this run.
struct PoolMetrics {
  obs::Counter regions{"runtime.regions"};
  obs::Counter chunks{"runtime.chunks"};
  obs::Counter steals{"runtime.steals"};
  obs::Counter busy_ns{"runtime.busy_ns"};
  obs::Histogram region_chunks{"runtime.region_chunks"};
  obs::Histogram steal_chunks{"runtime.steal_chunks"};
  obs::Histogram victim_queue_depth{"runtime.victim_queue_depth"};
};

PoolMetrics& metrics() {
  static PoolMetrics m;
  return m;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  lanes_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    lanes_.push_back(std::make_unique<Lane>());
  workers_.reserve(threads - 1);
  for (std::size_t lane = 1; lane < threads; ++lane)
    workers_.emplace_back([this, lane] { worker_main(lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(epoch_mu_);
    stop_ = true;
  }
  epoch_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_sequential(
    std::size_t n, std::size_t grain,
    const std::function<void(ChunkRange)>& body) {
  for (std::size_t begin = 0, index = 0; begin < n; begin += grain, ++index) {
    const std::size_t end = begin + grain < n ? begin + grain : n;
    body(ChunkRange{begin, end, index});
  }
}

void ThreadPool::run_chunks(std::size_t n, std::size_t grain,
                            const std::function<void(ChunkRange)>& body) {
  PSL_EXPECTS(grain > 0);
  if (n == 0) return;
  const std::size_t total = chunk_count(n, grain);
  metrics().regions.add(1);
  metrics().region_chunks.record(total);
  // One lane, one chunk, or a nested call: nothing to parallelize.
  if (lanes_.size() == 1 || total == 1 || tl_inside_pool) {
    metrics().chunks.add(total);
    run_sequential(n, grain, body);
    return;
  }
  PSL_OBS_SPAN("runtime.region");
  PSL_EXPECTS_MSG(total < (std::uint64_t{1} << 32),
                  "chunk count " << total << " exceeds the 32-bit range "
                                 << "encoding; raise the grain");

  // Serialize external submitters: one region at a time.
  std::lock_guard<std::mutex> submit(start_mu_);

  // Publish the region.  The release stores below (seed slots) and the
  // epoch bump order these plain/relaxed writes before any lane's claim.
  n_.store(n, std::memory_order_relaxed);
  grain_.store(grain, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  body_.store(&body, std::memory_order_release);
  total_chunks_.store(total, std::memory_order_release);

  // Pre-partition the chunk space into one contiguous block per lane.
  const std::size_t lane_count = lanes_.size();
  const std::size_t per = total / lane_count;
  const std::size_t rem = total % lane_count;
  std::uint64_t begin = 0;
  for (std::size_t l = 0; l < lane_count; ++l) {
    const std::uint64_t len = per + (l < rem ? 1 : 0);
    lanes_[l]->seed.store(len ? pack(begin, begin + len) : kNoRange,
                          std::memory_order_release);
    begin += len;
  }

  {
    std::lock_guard<std::mutex> lk(epoch_mu_);
    ++epoch_;
  }
  epoch_cv_.notify_all();

  // The caller is lane 0.
  tl_inside_pool = true;
  participate(0);
  tl_inside_pool = false;

  // Wait until every chunk ran AND every lane left the region, so the
  // region slots can be rewritten by the next call.
  {
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait(lk, [&] {
      return completed_.load(std::memory_order_acquire) >= total &&
             active_.load(std::memory_order_acquire) == 0;
    });
  }
  body_.store(nullptr, std::memory_order_release);
  if (failed_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lk(error_mu_);
      err = error_;
      error_ = nullptr;
    }
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_main(std::size_t lane) {
  tl_inside_pool = true;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(epoch_mu_);
      epoch_cv_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    participate(lane);
  }
}

void ThreadPool::participate(std::size_t lane) {
  active_.fetch_add(1, std::memory_order_acq_rel);
  std::size_t idle_rounds = 0;
  while (completed_.load(std::memory_order_acquire) <
         total_chunks_.load(std::memory_order_acquire)) {
    if (try_acquire_work(lane)) {
      idle_rounds = 0;
      continue;
    }
    // Nothing to claim right now: somebody holds an unsplit range.  Back
    // off gently — on oversubscribed machines a yield lets the owner run.
    ++idle_rounds;
    if (idle_rounds < 16) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(done_mu_);
    done_cv_.notify_all();
  }
}

bool ThreadPool::try_acquire_work(std::size_t lane) {
  Lane& self = *lanes_[lane];
  if (auto r = self.deque.pop()) {
    execute_range(lane, *r);
    return true;
  }
  const std::uint64_t seed =
      self.seed.exchange(kNoRange, std::memory_order_acq_rel);
  if (seed != kNoRange) {
    execute_range(lane, seed);
    return true;
  }
  // Raid the other lanes: deques first (splits are hot), then seeds.
  const std::size_t lane_count = lanes_.size();
  for (std::size_t off = 1; off < lane_count; ++off) {
    Lane& victim = *lanes_[(lane + off) % lane_count];
    if (auto r = victim.deque.steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      metrics().steals.add(1);
      metrics().steal_chunks.record(range_end(*r) - range_begin(*r));
      metrics().victim_queue_depth.record(victim.deque.size_hint());
      execute_range(lane, *r);
      return true;
    }
  }
  for (std::size_t off = 1; off < lane_count; ++off) {
    Lane& victim = *lanes_[(lane + off) % lane_count];
    const std::uint64_t stolen =
        victim.seed.exchange(kNoRange, std::memory_order_acq_rel);
    if (stolen != kNoRange) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      metrics().steals.add(1);
      metrics().steal_chunks.record(range_end(stolen) - range_begin(stolen));
      execute_range(lane, stolen);
      return true;
    }
  }
  return false;
}

void ThreadPool::execute_range(std::size_t lane, std::uint64_t range) {
  // Busy time: everything below runs chunk bodies (or splits towards
  // them), so this window is this lane's utilization, not its idle spin.
  const std::uint64_t t0 = now_ns();
  std::uint64_t begin = range_begin(range);
  std::uint64_t end = range_end(range);
  for (;;) {
    // Lazy binary splitting: keep the near half, expose the far half.
    while (end - begin > 1) {
      const std::uint64_t mid = begin + (end - begin) / 2;
      lanes_[lane]->deque.push(pack(mid, end));
      end = mid;
    }
    run_one_chunk(static_cast<std::size_t>(begin));
    if (auto next = lanes_[lane]->deque.pop()) {
      begin = range_begin(*next);
      end = range_end(*next);
    } else {
      break;
    }
  }
  metrics().busy_ns.add(now_ns() - t0);
}

void ThreadPool::run_one_chunk(std::size_t chunk) {
  metrics().chunks.add(1);
  // The claim that delivered `chunk` orders this load after the region's
  // release stores, so all region fields are consistent here.
  const auto* body = body_.load(std::memory_order_acquire);
  const std::size_t n = n_.load(std::memory_order_relaxed);
  const std::size_t grain = grain_.load(std::memory_order_relaxed);
  if (!failed_.load(std::memory_order_relaxed)) {
    try {
      const std::size_t begin = chunk * grain;
      const std::size_t end = begin + grain < n ? begin + grain : n;
      (*body)(ChunkRange{begin, end, chunk});
    } catch (...) {
      std::lock_guard<std::mutex> lk(error_mu_);
      if (!failed_.exchange(true, std::memory_order_acq_rel))
        error_ = std::current_exception();
    }
  }
  const std::size_t done =
      completed_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (done == total_chunks_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(done_mu_);
    done_cv_.notify_all();
  }
}

}  // namespace pslocal::runtime
