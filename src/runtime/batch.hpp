// Batch task submission — the hook the serving engine (src/service/)
// uses to fan a batch of *heterogeneous* independent jobs onto a
// Scheduler.
//
// run_chunks is an index-space primitive: it assumes the work is a loop
// over [0, n).  A service batch is the other shape — a short vector of
// distinct closures (one per unique cache miss) with wildly different
// costs.  run_task_batch maps each task to a one-element chunk (grain 1)
// so the work-stealing pool can rebalance whole tasks between lanes,
// while keeping the Scheduler contract: each task runs exactly once, and
// any cross-task combining the caller does afterwards is in task order.
//
// Tasks may themselves call parallel primitives on the same scheduler:
// nested regions run sequentially inline (runtime/thread_pool.hpp), so a
// cheap batch costs nothing extra and a singleton batch behaves exactly
// like calling the task directly.
#pragma once

#include <functional>
#include <vector>

#include "runtime/scheduler.hpp"

namespace pslocal::runtime {

/// Run every task exactly once, in parallel where the scheduler allows.
/// Blocks until all tasks finished; rethrows the first task exception.
inline void run_task_batch(Scheduler& sched,
                           const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {  // skip the scheduling round-trip
    tasks.front()();
    return;
  }
  sched.run_chunks(tasks.size(), 1, [&tasks](ChunkRange r) {
    for (std::size_t i = r.begin; i < r.end; ++i) tasks[i]();
  });
}

}  // namespace pslocal::runtime
