// Parallel algorithm primitives on top of runtime::Scheduler.
//
// All primitives obey the determinism contract of runtime/scheduler.hpp:
// chunk boundaries depend only on (n, grain) and order-sensitive
// combining happens in ascending chunk order, so for a fixed seed the
// result of every primitive is bit-identical across thread counts —
// including floating-point reductions, whose association order is fixed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/scheduler.hpp"
#include "util/rng.hpp"

namespace pslocal::runtime {

/// An index range with an explicit grain (TBB-style blocked range).
struct BlockedRange {
  std::size_t n = 0;
  std::size_t grain = 0;  // 0 = default_grain(n)

  [[nodiscard]] std::size_t resolved_grain() const {
    return grain == 0 ? default_grain(n) : grain;
  }
};

/// Apply body(begin, end) to every chunk of [0, range.n).  The body must
/// only write state disjoint per element or per chunk.
template <typename Body>
void parallel_for(Scheduler& sched, BlockedRange range, Body&& body) {
  sched.run_chunks(range.n, range.resolved_grain(),
                   [&body](ChunkRange c) { body(c.begin, c.end); });
}

/// Apply body(i) to every i in [0, range.n).
template <typename Body>
void parallel_for_each_index(Scheduler& sched, BlockedRange range,
                             Body&& body) {
  parallel_for(sched, range, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

/// Deterministic reduction.  map(begin, end, chunk_index) -> T runs once
/// per chunk (in parallel); the partial results are folded with
/// combine(acc, partial) in ascending chunk order on the calling thread.
/// The fold order is what makes non-commutative / floating-point
/// reductions reproducible at every thread count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(Scheduler& sched, BlockedRange range, T identity, Map&& map,
                  Combine&& combine) {
  const std::size_t grain = range.resolved_grain();
  const std::size_t chunks = chunk_count(range.n, grain);
  if (chunks == 0) return identity;
  // A plain array, not std::vector<T>: chunk slots must be distinct
  // objects even for T = bool (vector<bool> packs bits and concurrent
  // slot writes would race on shared bytes).
  std::unique_ptr<T[]> partials(new T[chunks]);
  sched.run_chunks(range.n, grain, [&](ChunkRange c) {
    partials[c.index] = map(c.begin, c.end, c.index);
  });
  T acc = std::move(identity);
  for (std::size_t i = 0; i < chunks; ++i)
    acc = combine(std::move(acc), std::move(partials[i]));
  return acc;
}

/// Deterministic collection: emit(begin, end, sink) appends any number of
/// items per chunk to its private sink; the per-chunk sinks are
/// concatenated in ascending chunk order.  Equivalent to the sequential
/// loop appending to one vector.
template <typename T, typename Emit>
std::vector<T> parallel_collect(Scheduler& sched, BlockedRange range,
                                Emit&& emit) {
  const std::size_t grain = range.resolved_grain();
  const std::size_t chunks = chunk_count(range.n, grain);
  std::vector<std::vector<T>> sinks(chunks);
  sched.run_chunks(range.n, grain, [&](ChunkRange c) {
    emit(c.begin, c.end, sinks[c.index]);
  });
  std::size_t total = 0;
  for (const auto& s : sinks) total += s.size();
  std::vector<T> out;
  out.reserve(total);
  for (auto& s : sinks) out.insert(out.end(), s.begin(), s.end());
  return out;
}

/// Parallel merge sort: fixed-size runs are sorted in parallel, then
/// merged pairwise in rounds (each round's merges run in parallel).  For
/// a strict weak order the sorted result is unique up to equal elements,
/// and std::merge keeps the left run first, so the output equals exactly
/// std::stable_sort of the input for any thread count.
template <typename T, typename Less = std::less<T>>
void parallel_sort(Scheduler& sched, std::vector<T>& v, Less less = Less{}) {
  const std::size_t n = v.size();
  const std::size_t run = default_grain(n);
  if (n <= run || sched.thread_count() == 1) {
    std::stable_sort(v.begin(), v.end(), less);
    return;
  }
  sched.run_chunks(n, run, [&](ChunkRange c) {
    std::stable_sort(v.begin() + static_cast<std::ptrdiff_t>(c.begin),
                     v.begin() + static_cast<std::ptrdiff_t>(c.end), less);
  });
  std::vector<T> buf(n);
  T* src = v.data();
  T* dst = buf.data();
  for (std::size_t width = run; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    // One chunk per merge pair: grain 1 over the pair index space.
    sched.run_chunks(pairs, 1, [&](ChunkRange c) {
      for (std::size_t p = c.begin; p < c.end; ++p) {
        const std::size_t lo = p * 2 * width;
        const std::size_t mid = std::min(n, lo + width);
        const std::size_t hi = std::min(n, lo + 2 * width);
        std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, less);
      }
    });
    std::swap(src, dst);
  }
  if (src != v.data())
    std::copy(src, src + n, v.data());
}

/// The RNG stream of one chunk: forked from the master seed by chunk
/// index, never by thread id, so randomized chunk bodies stay
/// reproducible at every thread count (docs/runtime.md, "Randomness").
inline Rng rng_for_chunk(std::uint64_t master_seed, std::size_t chunk_index) {
  return Rng(master_seed).fork(chunk_index);
}

}  // namespace pslocal::runtime
