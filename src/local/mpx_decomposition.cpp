#include "local/mpx_decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/algorithms.hpp"
#include "local/simulator.hpp"

namespace pslocal {

namespace {

struct MpxState {
  double delta = 0.0;
  double best_key = 0.0;
  VertexId best_center = 0;
  bool changed = true;  // whether last round improved the key
};

struct MpxMsg {
  double key = 0.0;
  VertexId center = 0;
};

class MpxAlgorithm final : public BroadcastAlgorithm<MpxState, MpxMsg> {
 public:
  explicit MpxAlgorithm(double beta) : beta_(beta) {}

  MpxState init(VertexId v, const Graph&, Rng& rng) override {
    MpxState s;
    s.delta = rng.next_exponential(beta_);
    s.best_key = -s.delta;  // own offer: dist 0 - delta_v
    s.best_center = v;
    return s;
  }

  std::optional<MpxMsg> emit(VertexId, const MpxState& s) override {
    return MpxMsg{s.best_key, s.best_center};
  }

  void step(VertexId, MpxState& s,
            std::span<const std::optional<MpxMsg>> inbox, Rng&) override {
    s.changed = false;
    for (const auto& m : inbox) {
      if (!m) continue;
      const double cand = m->key + 1.0;  // one hop further from m->center
      if (cand < s.best_key ||
          (cand == s.best_key && m->center < s.best_center)) {
        s.best_key = cand;
        s.best_center = m->center;
        s.changed = true;
      }
    }
  }

  bool halted(VertexId, const MpxState&) override {
    // Termination is handled by the round cap in mpx_clustering: a node
    // cannot locally know that no better offer is still in flight.
    return false;
  }

 private:
  double beta_;
};

}  // namespace

MpxResult mpx_clustering(const Graph& g, double beta, std::uint64_t seed) {
  PSL_EXPECTS(beta > 0.0 && beta <= 1.0);
  const std::size_t n = g.vertex_count();
  MpxResult res;
  if (n == 0) return res;

  // Flood for R rounds, where R bounds max ceil(delta)+1.  We cannot peek
  // at the draws before running (the algorithm is distributed), so use the
  // w.h.p. bound 3 ln(n+1)/beta + 2 and verify afterwards.
  const auto rounds = static_cast<std::size_t>(
      std::ceil(3.0 * std::log(static_cast<double>(n) + 1.0) / beta)) + 2;

  MpxAlgorithm algo(beta);
  auto run = run_local(g, algo, seed, rounds);
  res.rounds = run.rounds;

  res.center_of.resize(n);
  res.key_of.resize(n);
  std::set<VertexId> centers;
  for (VertexId v = 0; v < n; ++v) {
    res.center_of[v] = run.states[v].best_center;
    res.key_of[v] = run.states[v].best_key;
    centers.insert(res.center_of[v]);
  }
  res.cluster_count = centers.size();

  // Post-run checks/metrics (centralized; not part of the algorithm).
  for (VertexId c : centers) {
    const auto dist = bfs_distances(g, c);
    for (VertexId v = 0; v < n; ++v) {
      if (res.center_of[v] == c) {
        PSL_CHECK_MSG(dist[v] != kUnreachable, "cluster spans components");
        res.max_cluster_radius = std::max(res.max_cluster_radius, dist[v]);
      }
    }
  }
  std::size_t cut = 0;
  for (auto [u, v] : g.edges())
    if (res.center_of[u] != res.center_of[v]) ++cut;
  res.cut_edge_fraction =
      g.edge_count() == 0
          ? 0.0
          : static_cast<double>(cut) / static_cast<double>(g.edge_count());
  return res;
}

}  // namespace pslocal
