// The LOCAL model of distributed computing [Linial 1992], as recalled in
// the paper's introduction:
//
//   "A graph is abstracted as an n-node network G = (V, E) with maximum
//    degree ∆.  Communications happen in synchronous rounds.  Per round,
//    each node can send one (unbounded size) message to each of its
//    neighbors.  At the end, each node should know its own part of the
//    output."
//
// This simulator executes *broadcast* algorithms: per round every node
// emits one message seen by all neighbors.  In the LOCAL model this is
// without loss of generality (a node can concatenate per-neighbor content
// into one unbounded message and receivers project their part); all
// algorithms in this library are natural broadcast algorithms anyway.
//
// The simulator enforces the model's single resource — rounds — exactly:
// a node's new state is a function of its previous state and the messages
// of its direct neighbors from this round only.  Per-node randomness comes
// from independent substreams of one seed, so runs are reproducible.
//
// Rounds are evaluated in parallel on the given runtime::Scheduler: the
// emit sweep and the step sweep are each data-parallel over vertices
// (the synchronous-round semantics already forbids a vertex from
// touching another vertex's state).  Because every vertex owns a
// dedicated RNG substream, the simulation is bit-identical at every
// thread count.  Algorithm implementations must keep emit/step/halted
// free of shared mutable state outside the vertex's own State (all
// in-tree algorithms are; per-vertex-slot members like Linial's round
// table are fine).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "obs/obs.hpp"
#include "runtime/global.hpp"
#include "runtime/parallel.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pslocal {

/// A broadcast LOCAL algorithm over node states of type State and messages
/// of type Msg.  Implementations override the four virtuals; the simulator
/// owns the synchronous schedule.
template <typename State, typename Msg>
class BroadcastAlgorithm {
 public:
  virtual ~BroadcastAlgorithm() = default;

  /// Initial state of node v (round 0, before any communication).
  [[nodiscard]] virtual State init(VertexId v, const Graph& g, Rng& rng) = 0;

  /// Message broadcast by a node this round; nullopt = stay silent.
  [[nodiscard]] virtual std::optional<Msg> emit(VertexId v,
                                                const State& state) = 0;

  /// State transition: inbox[i] is the message of g.neighbors(v)[i]
  /// (nullopt if that neighbor stayed silent).
  virtual void step(VertexId v, State& state,
                    std::span<const std::optional<Msg>> inbox, Rng& rng) = 0;

  /// A halted node neither changes state nor needs more rounds.  The
  /// simulation stops when every node has halted (it still emits, so
  /// neighbors can read final outputs).
  [[nodiscard]] virtual bool halted(VertexId v, const State& state) = 0;

  /// Payload size of a message in bytes, for the simulator's bandwidth
  /// accounting.  LOCAL allows unbounded messages — the accounting shows
  /// where a bandwidth-limited model (CONGEST) would diverge.  Override
  /// for variable-size messages; the default charges the static size.
  [[nodiscard]] virtual std::size_t message_size(const Msg&) const {
    return sizeof(Msg);
  }
};

template <typename State>
struct LocalRunResult {
  std::vector<State> states;
  std::size_t rounds = 0;    // communication rounds executed
  bool all_halted = false;   // false iff max_rounds was hit first
  std::size_t messages_sent = 0;       // broadcasts that carried a payload
  std::size_t max_message_bytes = 0;   // largest single payload
  std::size_t total_message_bytes = 0; // sum of broadcast payload sizes
};

/// Run the algorithm until every node halts or `max_rounds` is reached.
/// The emit and step sweeps of each round fan out on `sched`.
namespace detail {
/// Shared across every run_local instantiation (obs dedupes by name).
struct LocalSimMetrics {
  obs::Counter runs{"local.runs"};
  obs::Counter rounds{"local.rounds"};
  obs::Counter messages{"local.messages"};
  obs::Counter message_bytes{"local.message_bytes"};
  obs::Histogram run_rounds{"local.run_rounds"};
  static const LocalSimMetrics& get() {
    static LocalSimMetrics m;
    return m;
  }
};
}  // namespace detail

template <typename State, typename Msg>
LocalRunResult<State> run_local(
    const Graph& g, BroadcastAlgorithm<State, Msg>& algo, std::uint64_t seed,
    std::size_t max_rounds,
    runtime::Scheduler& sched = runtime::global_scheduler()) {
  PSL_OBS_SPAN("local.run");
  const auto& obs_metrics = detail::LocalSimMetrics::get();
  obs_metrics.runs.add(1);
  const std::size_t n = g.vertex_count();
  Rng base(seed);
  std::vector<Rng> node_rng;
  node_rng.reserve(n);
  for (VertexId v = 0; v < n; ++v) node_rng.push_back(base.split(v));

  LocalRunResult<State> run;
  // init stays sequential in vertex order: some algorithms size
  // per-vertex tables here, and the order is part of the seeded contract.
  run.states.reserve(n);
  for (VertexId v = 0; v < n; ++v)
    run.states.push_back(algo.init(v, g, node_rng[v]));

  auto all_halted = [&] {
    return runtime::parallel_reduce<bool>(
        sched, {n, 0}, true,
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          for (VertexId v = lo; v < hi; ++v)
            if (!algo.halted(v, run.states[v])) return false;
          return true;
        },
        [](bool a, bool b) { return a && b; });
  };

  struct RoundAccounting {
    std::size_t sent = 0;
    std::size_t total_bytes = 0;
    std::size_t max_bytes = 0;
  };

  std::vector<std::optional<Msg>> outbox(n);
  while (run.rounds < max_rounds) {
    if (all_halted()) {
      run.all_halted = true;
      break;
    }

    PSL_OBS_SPAN("local.round");

    // Synchronous round: everyone emits from the pre-round state...
    RoundAccounting acct;
    {
      PSL_OBS_SPAN("local.emit");
      acct = runtime::parallel_reduce<RoundAccounting>(
          sched, {n, 0}, RoundAccounting{},
          [&](std::size_t lo, std::size_t hi, std::size_t) {
            RoundAccounting a;
            for (VertexId v = lo; v < hi; ++v) {
              outbox[v] = algo.emit(v, run.states[v]);
              if (outbox[v]) {
                const std::size_t bytes = algo.message_size(*outbox[v]);
                ++a.sent;
                a.total_bytes += bytes;
                a.max_bytes = std::max(a.max_bytes, bytes);
              }
            }
            return a;
          },
          [](RoundAccounting a, RoundAccounting b) {
            a.sent += b.sent;
            a.total_bytes += b.total_bytes;
            a.max_bytes = std::max(a.max_bytes, b.max_bytes);
            return a;
          });
    }
    run.messages_sent += acct.sent;
    run.total_message_bytes += acct.total_bytes;
    run.max_message_bytes = std::max(run.max_message_bytes, acct.max_bytes);

    // ...then everyone steps on its neighbors' messages.
    {
      PSL_OBS_SPAN("local.step");
      runtime::parallel_for(
          sched, {n, 0}, [&](std::size_t lo, std::size_t hi) {
            std::vector<std::optional<Msg>> inbox;  // per-chunk scratch
            for (VertexId v = lo; v < hi; ++v) {
              if (algo.halted(v, run.states[v])) continue;
              const auto nb = g.neighbors(v);
              inbox.assign(nb.size(), std::nullopt);
              for (std::size_t i = 0; i < nb.size(); ++i)
                inbox[i] = outbox[nb[i]];
              algo.step(v, run.states[v], inbox, node_rng[v]);
            }
          });
    }
    obs_metrics.rounds.add(1);
    obs_metrics.messages.add(acct.sent);
    obs_metrics.message_bytes.add(acct.total_bytes);
    ++run.rounds;
  }
  if (!run.all_halted) run.all_halted = all_halted();
  obs_metrics.run_rounds.record(run.rounds);
  return run;
}

}  // namespace pslocal
