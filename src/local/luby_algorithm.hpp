// Implementation detail of Luby's MIS (local/luby_mis.*), exposed so the
// virtual-hosting layer (core/virtual_local.hpp, the distributed
// reduction) can run the identical algorithm through host simulation.
// Library users should call luby_mis() / LubyOracle instead.
#pragma once

#include <cstdint>

#include "local/simulator.hpp"

namespace pslocal::detail {

enum class LubyStatus : std::uint8_t { kUndecided, kIn, kOut };
enum class LubyPhase : std::uint8_t { kPriority, kAnnounce };

struct LubyState {
  LubyStatus status = LubyStatus::kUndecided;
  LubyPhase phase = LubyPhase::kPriority;
  std::uint64_t priority = 0;
  bool tentative_join = false;
};

struct LubyMsg {
  bool undecided = false;
  std::uint64_t priority = 0;
  VertexId sender = 0;  // tie-break on (priority, id)
  bool joined = false;
};

class LubyAlgorithm final : public BroadcastAlgorithm<LubyState, LubyMsg> {
 public:
  LubyState init(VertexId, const Graph&, Rng& rng) override {
    LubyState s;
    s.priority = rng.next_u64();
    return s;
  }

  std::optional<LubyMsg> emit(VertexId v, const LubyState& s) override {
    LubyMsg m;
    m.undecided = (s.status == LubyStatus::kUndecided);
    m.priority = s.priority;
    m.sender = v;
    m.joined = s.tentative_join;
    return m;
  }

  void step(VertexId v, LubyState& s,
            std::span<const std::optional<LubyMsg>> inbox, Rng& rng) override {
    if (s.status == LubyStatus::kIn) {
      // Joined last round; the announcement was emitted from the pre-round
      // state, so the iteration can close for this node.
      if (s.phase == LubyPhase::kAnnounce) {
        s.tentative_join = false;
        s.phase = LubyPhase::kPriority;
      }
      return;
    }
    if (s.status == LubyStatus::kOut) return;
    if (s.phase == LubyPhase::kPriority) {
      // Join iff strictly smallest (priority, id) among undecided closed
      // neighborhood.
      bool is_min = true;
      for (const auto& m : inbox) {
        if (!m || !m->undecided) continue;
        if (m->priority < s.priority ||
            (m->priority == s.priority && m->sender < v)) {
          is_min = false;
          break;
        }
      }
      s.tentative_join = is_min;
      if (is_min) s.status = LubyStatus::kIn;
      s.phase = LubyPhase::kAnnounce;
    } else {
      for (const auto& m : inbox) {
        if (m && m->joined) {
          s.status = LubyStatus::kOut;
          break;
        }
      }
      s.tentative_join = false;
      s.priority = rng.next_u64();  // fresh priority for the next iteration
      s.phase = LubyPhase::kPriority;
    }
  }

  bool halted(VertexId, const LubyState& s) override {
    // A node that joined must still announce once, hence the phase check.
    return s.status != LubyStatus::kUndecided &&
           s.phase == LubyPhase::kPriority && !s.tentative_join;
  }
};

/// Default round cap scaling with the w.h.p. bound.
inline std::size_t luby_default_round_cap(std::size_t n) {
  double nn = n < 2 ? 2.0 : static_cast<double>(n);
  std::size_t log2n = 0;
  while (nn > 1.0) {
    nn /= 2.0;
    ++log2n;
  }
  return 2 * (40 + 8 * log2n);
}

}  // namespace pslocal::detail
