// Deterministic LOCAL reductions *from* a proper coloring — the classic
// pipeline that makes Linial's coloring useful and frames the paper's
// open question:
//
//   * mis_from_coloring: sweep color classes 1..C; in round i every
//     still-undecided node of color class i joins the MIS unless a
//     neighbor already did.  C rounds, deterministic.  With C = poly(Δ)
//     colors this is fast for small Δ — but no polylog-in-n deterministic
//     MIS is known for general graphs, which is exactly what
//     P-SLOCAL-completeness (and this paper) is about.
//
//   * color_reduction: reduce a proper C-coloring to Δ+1 colors, one
//     color class per round (nodes of the eliminated class pick the
//     smallest color free among neighbors).  C - (Δ+1) rounds.
//
// Both run in the message-passing simulator and report exact round
// counts.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

struct MisFromColoringResult {
  std::vector<VertexId> independent_set;
  std::size_t rounds = 0;  // <= number of colors
};

/// Deterministic MIS given a proper coloring (0-based colors).
MisFromColoringResult mis_from_coloring(const Graph& g,
                                        const std::vector<std::size_t>& color);

struct ColorReductionResult {
  std::vector<std::size_t> coloring;  // proper, < Δ+1 colors
  std::size_t rounds = 0;
};

/// Deterministic reduction of a proper coloring to Δ+1 colors.
ColorReductionResult color_reduction(const Graph& g,
                                     const std::vector<std::size_t>& color);

}  // namespace pslocal
