#include "local/coloring_local.hpp"

#include <cmath>

#include "coloring/coloring.hpp"
#include "local/simulator.hpp"

namespace pslocal {

namespace {

struct ColorState {
  std::size_t final_color = kNoColor;
  std::size_t candidate = kNoColor;
  std::vector<bool> taken;  // palette slots taken by decided neighbors
};

struct ColorMsg {
  bool decided = false;
  std::size_t color = kNoColor;  // final color or candidate
  VertexId sender = 0;
};

class ColoringAlgorithm final
    : public BroadcastAlgorithm<ColorState, ColorMsg> {
 public:
  ColorState init(VertexId v, const Graph& g, Rng& rng) override {
    ColorState s;
    s.taken.assign(g.degree(v) + 1, false);
    s.candidate = draw(s, rng);
    return s;
  }

  std::optional<ColorMsg> emit(VertexId v, const ColorState& s) override {
    ColorMsg m;
    m.decided = (s.final_color != kNoColor);
    m.color = m.decided ? s.final_color : s.candidate;
    m.sender = v;
    return m;
  }

  void step(VertexId v, ColorState& s,
            std::span<const std::optional<ColorMsg>> inbox,
            Rng& rng) override {
    if (s.final_color != kNoColor) return;
    bool keep = true;
    for (const auto& m : inbox) {
      if (!m) continue;
      if (m->decided) {
        if (m->color < s.taken.size()) s.taken[m->color] = true;
        if (m->color == s.candidate) keep = false;
      } else if (m->color == s.candidate && m->sender < v) {
        keep = false;  // lower id wins equal candidates
      }
    }
    if (keep && !s.taken[s.candidate]) {
      s.final_color = s.candidate;
    } else {
      s.candidate = draw(s, rng);
    }
  }

  bool halted(VertexId, const ColorState& s) override {
    return s.final_color != kNoColor;
  }

 private:
  static std::size_t draw(const ColorState& s, Rng& rng) {
    // Uniform over free palette slots; the palette {0..deg} always has a
    // free slot (at most deg neighbors can hold colors).
    std::vector<std::size_t> free;
    free.reserve(s.taken.size());
    for (std::size_t c = 0; c < s.taken.size(); ++c)
      if (!s.taken[c]) free.push_back(c);
    PSL_CHECK(!free.empty());
    return free[rng.next_below(free.size())];
  }
};

}  // namespace

LocalColoringResult local_random_coloring(const Graph& g, std::uint64_t seed,
                                          std::size_t max_rounds) {
  if (max_rounds == 0) {
    const double n = std::max<double>(2.0, static_cast<double>(g.vertex_count()));
    max_rounds = 60 + 12 * static_cast<std::size_t>(std::log2(n));
  }
  ColoringAlgorithm algo;
  auto run = run_local(g, algo, seed, max_rounds);

  LocalColoringResult res;
  res.rounds = run.rounds;
  res.completed = run.all_halted;
  res.coloring.resize(g.vertex_count(), kNoColor);
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    res.coloring[v] = run.states[v].final_color;
  PSL_CHECK_MSG(res.completed, "coloring did not finish in " << max_rounds
                                                             << " rounds");
  PSL_ENSURES(is_proper_coloring(g, res.coloring));
  return res;
}

}  // namespace pslocal
