// CONGEST-mode execution: the same synchronous broadcast semantics as
// run_local(), but with a per-edge bandwidth cap of B bytes per physical
// round.  A broadcast of s bytes is fragmented into ceil(s/B) fragments;
// the system stays synchronous, so an algorithm round costs
// max_v ceil(size(msg_v)/B) physical rounds.
//
// The paper's model is LOCAL precisely because the G_k simulation bundles
// up to max-host-load virtual messages into one physical message
// (core/virtual_local.hpp); running the same algorithms under a CONGEST
// cap quantifies what that unboundedness buys (experiment E9/E14 columns).
#pragma once

#include <cstddef>

#include "local/simulator.hpp"

namespace pslocal {

template <typename State>
struct CongestRunResult {
  LocalRunResult<State> local;      // the algorithm-level run
  std::size_t bandwidth_bytes = 0;  // the cap B
  std::size_t physical_rounds = 0;  // sum of per-round fragment counts
  std::size_t max_fragments_per_round = 0;
};

/// Execute `algo` with bandwidth cap B >= 1 byte.  Semantics (states,
/// outputs, algorithm rounds) are identical to run_local; only the
/// physical-round bill differs.
template <typename State, typename Msg>
CongestRunResult<State> run_congest(const Graph& g,
                                    BroadcastAlgorithm<State, Msg>& algo,
                                    std::uint64_t seed,
                                    std::size_t max_rounds,
                                    std::size_t bandwidth_bytes) {
  PSL_EXPECTS(bandwidth_bytes >= 1);
  // The scheduling mirrors run_local() exactly (same seeding, same round
  // structure); only the per-round fragment billing is added.
  CongestRunResult<State> out;
  out.bandwidth_bytes = bandwidth_bytes;

  const std::size_t n = g.vertex_count();
  Rng base(seed);
  std::vector<Rng> node_rng;
  node_rng.reserve(n);
  for (VertexId v = 0; v < n; ++v) node_rng.push_back(base.split(v));

  auto& run = out.local;
  run.states.reserve(n);
  for (VertexId v = 0; v < n; ++v)
    run.states.push_back(algo.init(v, g, node_rng[v]));

  std::vector<std::optional<Msg>> outbox(n);
  std::vector<std::optional<Msg>> inbox;
  while (run.rounds < max_rounds) {
    bool all_halted = true;
    for (VertexId v = 0; v < n; ++v)
      if (!algo.halted(v, run.states[v])) {
        all_halted = false;
        break;
      }
    if (all_halted) {
      run.all_halted = true;
      break;
    }
    std::size_t round_max_bytes = 0;
    for (VertexId v = 0; v < n; ++v) {
      outbox[v] = algo.emit(v, run.states[v]);
      if (outbox[v]) {
        const std::size_t bytes = algo.message_size(*outbox[v]);
        ++run.messages_sent;
        run.total_message_bytes += bytes;
        run.max_message_bytes = std::max(run.max_message_bytes, bytes);
        round_max_bytes = std::max(round_max_bytes, bytes);
      }
    }
    const std::size_t fragments =
        round_max_bytes == 0
            ? 1
            : (round_max_bytes + bandwidth_bytes - 1) / bandwidth_bytes;
    out.physical_rounds += fragments;
    out.max_fragments_per_round =
        std::max(out.max_fragments_per_round, fragments);

    for (VertexId v = 0; v < n; ++v) {
      if (algo.halted(v, run.states[v])) continue;
      const auto nb = g.neighbors(v);
      inbox.assign(nb.size(), std::nullopt);
      for (std::size_t i = 0; i < nb.size(); ++i) inbox[i] = outbox[nb[i]];
      algo.step(v, run.states[v], inbox, node_rng[v]);
    }
    ++run.rounds;
  }
  if (!run.all_halted) {
    bool all_halted = true;
    for (VertexId v = 0; v < n; ++v)
      if (!algo.halted(v, run.states[v])) all_halted = false;
    run.all_halted = all_halted;
  }
  return out;
}

}  // namespace pslocal
