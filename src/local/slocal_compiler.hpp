// The SLOCAL -> LOCAL compiler via network decomposition [GKM17].
//
// This is why P-SLOCAL-completeness matters (paper, Section 1): "If any
// P-SLOCAL-complete problem can be solved efficiently by a deterministic
// algorithm in the LOCAL model all problems in the class P-SLOCAL can be
// solved efficiently by deterministic algorithms."  The conversion engine
// is the classic one:
//
//  1. Build the power graph G^{2r+1}, where r is the SLOCAL algorithm's
//     locality.  Compute a (C, D) network decomposition of G^{2r+1}
//     (slocal/network_decomposition.*).
//  2. Process cluster color classes 1..C sequentially.  Within a class,
//     all clusters run *in parallel*: distinct same-color clusters are
//     non-adjacent in G^{2r+1}, i.e. more than 2r+1 hops apart in G, so
//     the r-hop read sets of their nodes are disjoint and the parallel
//     execution is literally a sequential SLOCAL execution in the order
//     (class, cluster, node).  Within a cluster a leader gathers the
//     cluster's (D_G + r)-hop neighborhood, runs the node steps locally,
//     and scatters the outputs.
//  3. LOCAL round cost: sum over classes of 2 * (D_G + r) + 1, where D_G
//     is the max weak diameter in G of that class's clusters — in total
//     O(C * (D * (2r+1) + r)) rounds, polylogarithmic whenever C, D and r
//     are.
//
// The compiler below performs the order construction and the safety
// checks exactly, executes the SLOCAL algorithm in that order on the
// measuring engine, and reports the LOCAL round bill of step 3.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "slocal/engine.hpp"
#include "slocal/network_decomposition.hpp"
#include "util/check.hpp"

namespace pslocal {

template <typename State>
struct CompiledLocalRun {
  std::vector<State> states;          // outputs, identical semantics to SLOCAL
  std::size_t slocal_locality = 0;    // measured locality (must be <= r)
  std::size_t local_rounds = 0;       // simulated LOCAL round bill
  std::size_t decomposition_colors = 0;
  std::size_t decomposition_clusters = 0;
  std::size_t max_cluster_weak_diameter = 0;  // in G
};

/// Compile and execute an SLOCAL algorithm with claimed locality r.
/// Throws (contract violation) if the algorithm exceeds locality r, since
/// the decomposition of G^{2r+1} would no longer justify parallelism.
template <typename State, typename Process>
CompiledLocalRun<State> compile_slocal_to_local(const Graph& g,
                                                std::size_t r,
                                                std::vector<State> initial,
                                                Process&& process) {
  PSL_EXPECTS(r >= 1);
  const std::size_t n = g.vertex_count();
  CompiledLocalRun<State> out;
  if (n == 0) return out;

  const Graph power = power_graph(g, 2 * r + 1);
  const NetworkDecomposition nd = ball_growing_decomposition(power);
  out.decomposition_colors = nd.color_count;
  out.decomposition_clusters = nd.cluster_count;

  // Safety check: same-color clusters must be > 2r apart in G.  Clusters
  // non-adjacent in G^{2r+1} are >= 2r+2 apart in G by construction; we
  // re-verify against G directly (belt and braces — this is the invariant
  // the parallel semantics rests on).
  std::vector<std::vector<VertexId>> members(nd.cluster_count);
  for (VertexId v = 0; v < n; ++v) members[nd.cluster_of[v]].push_back(v);
  for (std::size_t c = 0; c < nd.cluster_count; ++c) {
    const auto dist = bfs_distances_multi(g, members[c], 2 * r + 1);
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] == kUnreachable) continue;
      const auto cv = nd.cluster_of[v];
      PSL_CHECK_MSG(cv == c || nd.color_of_cluster[cv] != nd.color_of_cluster[c],
                    "same-color clusters " << c << " and " << cv
                                           << " are within 2r+1 hops");
    }
  }

  // Execution order: (class color, cluster id, node id).
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const auto ca = nd.cluster_of[a], cb = nd.cluster_of[b];
    if (nd.color_of_cluster[ca] != nd.color_of_cluster[cb])
      return nd.color_of_cluster[ca] < nd.color_of_cluster[cb];
    return ca < cb;
  });

  auto run = run_slocal<State>(g, std::move(initial), order,
                               std::forward<Process>(process));
  PSL_CHECK_MSG(run.max_locality <= r,
                "SLOCAL algorithm used locality "
                    << run.max_locality << " > declared r = " << r);
  out.states = std::move(run.states);
  out.slocal_locality = run.max_locality;

  // Round bill: per color class, gather + compute + scatter.
  std::vector<std::size_t> class_diam(nd.color_count, 0);
  for (std::size_t c = 0; c < nd.cluster_count; ++c) {
    // Weak diameter of cluster c in G.
    std::size_t diam = 0;
    for (VertexId v : members[c]) {
      const auto dist = bfs_distances(g, v);
      for (VertexId w : members[c]) {
        PSL_CHECK(dist[w] != kUnreachable);
        diam = std::max(diam, dist[w]);
      }
    }
    out.max_cluster_weak_diameter = std::max(out.max_cluster_weak_diameter,
                                             diam);
    class_diam[nd.color_of_cluster[c]] =
        std::max(class_diam[nd.color_of_cluster[c]], diam);
  }
  for (std::size_t col = 0; col < nd.color_count; ++col)
    out.local_rounds += 2 * (class_diam[col] + r) + 1;
  return out;
}

}  // namespace pslocal
