#include "local/from_coloring.hpp"

#include <algorithm>

#include "coloring/coloring.hpp"
#include "local/simulator.hpp"
#include "mis/independent_set.hpp"
#include "util/check.hpp"

namespace pslocal {

namespace {

// --- MIS by color classes ---------------------------------------------

struct ClassState {
  std::size_t color = 0;   // my (input) color class
  std::size_t round = 0;   // current sweep position
  enum : std::uint8_t { kUndecided, kIn, kOut } status = kUndecided;
};

struct ClassMsg {
  bool in_mis = false;
};

class MisByClasses final : public BroadcastAlgorithm<ClassState, ClassMsg> {
 public:
  MisByClasses(const std::vector<std::size_t>& color, std::size_t classes)
      : color_(color), classes_(classes) {}

  ClassState init(VertexId v, const Graph&, Rng&) override {
    ClassState s;
    s.color = color_[v];
    return s;
  }

  std::optional<ClassMsg> emit(VertexId, const ClassState& s) override {
    return ClassMsg{s.status == ClassState::kIn};
  }

  void step(VertexId, ClassState& s,
            std::span<const std::optional<ClassMsg>> inbox, Rng&) override {
    // Round i decides color class i: a node joins unless an (earlier-
    // class) neighbor is already in.
    if (s.status == ClassState::kUndecided && s.color == s.round) {
      bool blocked = false;
      for (const auto& m : inbox)
        if (m && m->in_mis) {
          blocked = true;
          break;
        }
      s.status = blocked ? ClassState::kOut : ClassState::kIn;
    }
    ++s.round;
  }

  bool halted(VertexId, const ClassState& s) override {
    return s.round >= classes_;
  }

 private:
  const std::vector<std::size_t>& color_;
  std::size_t classes_;
};

// --- color reduction ----------------------------------------------------

struct ReduceState {
  std::size_t color = 0;
  std::size_t round = 0;
};

struct ReduceMsg {
  std::size_t color = 0;
};

class ReduceByClasses final
    : public BroadcastAlgorithm<ReduceState, ReduceMsg> {
 public:
  ReduceByClasses(const std::vector<std::size_t>& color, std::size_t classes,
                  std::size_t target)
      : color_(color), classes_(classes), target_(target) {}

  ReduceState init(VertexId v, const Graph&, Rng&) override {
    return ReduceState{color_[v], 0};
  }

  std::optional<ReduceMsg> emit(VertexId, const ReduceState& s) override {
    return ReduceMsg{s.color};
  }

  void step(VertexId, ReduceState& s,
            std::span<const std::optional<ReduceMsg>> inbox, Rng&) override {
    // Round i eliminates color class target_ + i: those nodes take the
    // smallest color < target_ unused by neighbors (exists: <= Δ taken).
    const std::size_t eliminated = target_ + s.round;
    if (s.color == eliminated) {
      std::vector<bool> used(target_, false);
      for (const auto& m : inbox)
        if (m && m->color < target_) used[m->color] = true;
      std::size_t c = 0;
      while (c < used.size() && used[c]) ++c;
      PSL_CHECK_MSG(c < target_, "no free color below the Δ+1 target");
      s.color = c;
    }
    ++s.round;
  }

  bool halted(VertexId, const ReduceState& s) override {
    return target_ + s.round >= classes_;
  }

 private:
  const std::vector<std::size_t>& color_;
  std::size_t classes_;
  std::size_t target_;
};

}  // namespace

MisFromColoringResult mis_from_coloring(
    const Graph& g, const std::vector<std::size_t>& color) {
  PSL_EXPECTS(is_proper_coloring(g, color));
  std::size_t classes = 0;
  for (auto c : color) classes = std::max(classes, c + 1);

  MisByClasses algo(color, classes);
  auto run = run_local(g, algo, 0, classes + 1);
  PSL_CHECK(run.all_halted);

  MisFromColoringResult res;
  res.rounds = run.rounds;
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (run.states[v].status == ClassState::kIn)
      res.independent_set.push_back(v);
  PSL_ENSURES(is_maximal_independent_set(g, res.independent_set));
  return res;
}

ColorReductionResult color_reduction(const Graph& g,
                                     const std::vector<std::size_t>& color) {
  PSL_EXPECTS(is_proper_coloring(g, color));
  std::size_t classes = 0;
  for (auto c : color) classes = std::max(classes, c + 1);
  const std::size_t target = g.max_degree() + 1;

  ColorReductionResult res;
  if (classes <= target) {
    res.coloring = color;
    return res;
  }
  ReduceByClasses algo(color, classes, target);
  auto run = run_local(g, algo, 0, classes + 1);
  PSL_CHECK(run.all_halted);
  res.rounds = run.rounds;
  res.coloring.resize(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    res.coloring[v] = run.states[v].color;
  PSL_ENSURES(is_proper_coloring(g, res.coloring));
  PSL_ENSURES(color_count(res.coloring) <= target);
  return res;
}

}  // namespace pslocal
