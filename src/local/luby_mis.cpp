#include "local/luby_mis.hpp"

#include "local/luby_algorithm.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {

LubyResult luby_mis(const Graph& g, std::uint64_t seed,
                    std::size_t max_rounds, runtime::Scheduler& sched) {
  if (max_rounds == 0)
    max_rounds = detail::luby_default_round_cap(g.vertex_count());
  detail::LubyAlgorithm algo;
  auto run = run_local(g, algo, seed, max_rounds, sched);

  LubyResult res;
  res.rounds = run.rounds;
  res.iterations = run.rounds / 2;
  res.completed = run.all_halted;
  res.messages_sent = run.messages_sent;
  res.max_message_bytes = run.max_message_bytes;
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (run.states[v].status == detail::LubyStatus::kIn)
      res.independent_set.push_back(v);
  PSL_CHECK_MSG(res.completed, "Luby did not finish in " << max_rounds
                                                         << " rounds");
  PSL_ENSURES(is_maximal_independent_set(g, res.independent_set));
  return res;
}

std::vector<VertexId> LubyOracle::solve(const Graph& g) {
  return luby_mis(g, seed_++).independent_set;
}

}  // namespace pslocal
