// Randomized (Δ+1)-vertex coloring in the LOCAL simulator — the second
// headline problem of the paper's introduction ("the (∆+1)-vertex coloring
// problem [has] fast randomized algorithms [Lub86]").
//
// Per iteration every uncolored node picks a uniformly random candidate
// from its remaining palette (colors {0..deg(v)} minus the final colors of
// decided neighbors) and keeps it unless a *conflicting* neighbor picked
// the same candidate (ties broken by id so exactly one of two equal picks
// survives).  Each node survives an iteration with probability >= 1/4,
// giving O(log n) iterations w.h.p.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

struct LocalColoringResult {
  std::vector<std::size_t> coloring;  // 0-based, proper, < Δ+1 colors
  std::size_t rounds = 0;
  bool completed = false;
};

LocalColoringResult local_random_coloring(const Graph& g, std::uint64_t seed,
                                          std::size_t max_rounds = 0);

}  // namespace pslocal
