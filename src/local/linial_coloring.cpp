#include "local/linial_coloring.hpp"

#include <algorithm>
#include <cmath>

#include "coloring/coloring.hpp"
#include "local/simulator.hpp"
#include "util/check.hpp"

namespace pslocal {

namespace {

bool is_prime(std::size_t x) {
  if (x < 2) return false;
  for (std::size_t p = 2; p * p <= x; ++p)
    if (x % p == 0) return false;
  return true;
}

/// True iff base^exp >= r (early exit, overflow-safe for our ranges).
bool power_at_least(std::size_t base, std::size_t exp, std::size_t r) {
  std::size_t pow = 1;
  for (std::size_t i = 0; i < exp; ++i) {
    if (base != 0 && pow >= (r + base - 1) / base) return true;  // pow*base >= r
    pow *= base;
    if (pow >= r) return true;
  }
  return pow >= r;
}

/// Integer ceil of the (d+1)-th root of r: smallest q with q^{d+1} >= r.
std::size_t ceil_root(std::size_t r, std::size_t d_plus_1) {
  if (r <= 1) return 1;
  auto guess = static_cast<std::size_t>(std::pow(
      static_cast<double>(r), 1.0 / static_cast<double>(d_plus_1)));
  guess = guess > 2 ? guess - 2 : 1;  // start safely below, walk up
  while (!power_at_least(guess, d_plus_1, r)) ++guess;
  return guess;
}

struct StepParams {
  std::size_t q = 0;  // field size (prime)
  std::size_t d = 0;  // polynomial degree bound
  std::size_t new_range = 0;  // q^2
};

/// Best (q, d) for one Linial step from color range r with max degree
/// delta; new_range >= r means no further progress is possible.
StepParams best_step(std::size_t r, std::size_t delta) {
  StepParams best;
  for (std::size_t d = 1; d <= 12; ++d) {
    // Need q > delta*d (good evaluation point exists) and q^{d+1} >= r
    // (colors embed injectively into polynomials).
    const std::size_t q_lo = std::max(delta * d + 1, ceil_root(r, d + 1));
    std::size_t q = q_lo;
    while (!is_prime(q)) ++q;
    const std::size_t range = q * q;
    if (best.q == 0 || range < best.new_range) {
      best.q = q;
      best.d = d;
      best.new_range = range;
    }
  }
  return best;
}

std::size_t poly_eval(std::size_t color, std::size_t q, std::size_t d,
                      std::size_t x) {
  // Horner over the base-q digits of `color` (degree <= d).
  std::vector<std::size_t> coeff(d + 1, 0);
  for (std::size_t i = 0; i <= d && color > 0; ++i) {
    coeff[i] = color % q;
    color /= q;
  }
  std::size_t acc = 0;
  for (std::size_t i = d + 1; i-- > 0;) acc = (acc * x + coeff[i]) % q;
  return acc;
}

class LinialAlgorithm final
    : public BroadcastAlgorithm<std::size_t, std::size_t> {
 public:
  explicit LinialAlgorithm(std::vector<StepParams> schedule)
      : schedule_(std::move(schedule)) {}

  std::size_t init(VertexId v, const Graph&, Rng&) override {
    round_of_.push_back(0);
    return v;  // the trivial coloring by unique ids
  }

  std::optional<std::size_t> emit(VertexId, const std::size_t& color) override {
    return color;
  }

  void step(VertexId v, std::size_t& color,
            std::span<const std::optional<std::size_t>> inbox, Rng&) override {
    const std::size_t round = round_of_[v]++;
    PSL_CHECK(round < schedule_.size());
    const auto [q, d, new_range] = schedule_[round];
    // Find the smallest evaluation point avoiding all neighbor collisions.
    std::size_t x = 0;
    for (; x < q; ++x) {
      const std::size_t mine = poly_eval(color, q, d, x);
      bool good = true;
      for (const auto& m : inbox) {
        if (m && poly_eval(*m, q, d, x) == mine) {
          good = false;
          break;
        }
      }
      if (good) break;
    }
    PSL_CHECK_MSG(x < q, "no good evaluation point — q too small");
    color = x * q + poly_eval(color, q, d, x);
  }

  bool halted(VertexId v, const std::size_t&) override {
    return round_of_[v] >= schedule_.size();
  }

 private:
  std::vector<StepParams> schedule_;
  std::vector<std::size_t> round_of_;
};

}  // namespace

std::size_t next_prime_above(std::size_t x) {
  std::size_t p = x + 1;
  while (!is_prime(p)) ++p;
  return p;
}

LinialResult linial_coloring(const Graph& g) {
  const std::size_t n = g.vertex_count();
  LinialResult res;
  if (n == 0) return res;
  const std::size_t delta = std::max<std::size_t>(1, g.max_degree());

  // Deterministic schedule from global knowledge (n, Δ) — legitimate in
  // the LOCAL model, where n and Δ are standard global parameters.
  std::vector<StepParams> schedule;
  std::size_t range = n;
  res.range_trace.push_back(range);
  while (true) {
    const auto step = best_step(range, delta);
    if (step.new_range >= range) break;  // fixed point reached
    schedule.push_back(step);
    range = step.new_range;
    res.range_trace.push_back(range);
  }

  LinialAlgorithm algo(schedule);
  auto run = run_local(g, algo, /*seed=*/0, schedule.size() + 1);
  PSL_CHECK(run.all_halted);

  res.coloring = std::move(run.states);
  res.colors_range = range;
  res.rounds = run.rounds;
  PSL_ENSURES(is_proper_coloring(g, res.coloring));
  for (auto c : res.coloring) PSL_ENSURES(c < range);
  return res;
}

}  // namespace pslocal
