// Miller–Peng–Xu (MPX) low-diameter clustering in the LOCAL simulator:
// randomized, exponential-shift based.  This is the randomized-LOCAL
// counterpart to the sequential ball-growing decomposition in
// slocal/network_decomposition.* and is used by experiments to contrast
// randomized LOCAL vs. deterministic SLOCAL clustering.
//
// Every node draws δ_v ~ Exponential(β) and offers the key
// dist(u, v) - δ_v to every node u; each u joins the cluster of the
// center minimizing the key (ties by center id).  Flooding for
// R = max_v ⌈δ_v⌉ + 1 rounds realizes exactly this assignment because
// keys only propagate along shortest paths.  W.h.p. R = O(log n / β) and
// every cluster has radius <= max δ; each edge is cut with probability
// O(β).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

struct MpxResult {
  std::vector<VertexId> center_of;   // per vertex: its cluster center
  std::vector<double> key_of;        // per vertex: winning key
  std::size_t rounds = 0;            // flooding rounds used
  std::size_t cluster_count = 0;
  std::size_t max_cluster_radius = 0;  // max dist(u, center_of[u])
  double cut_edge_fraction = 0.0;      // fraction of inter-cluster edges
};

/// Run MPX with shift rate beta in (0, 1].
MpxResult mpx_clustering(const Graph& g, double beta, std::uint64_t seed);

}  // namespace pslocal
