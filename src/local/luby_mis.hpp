// Luby's randomized maximal independent set algorithm [Lub86] in the
// LOCAL simulator — the fast randomized counterpart whose missing
// deterministic analogue motivates the P-SLOCAL theory (paper, Section 1).
//
// Each iteration takes two communication rounds:
//   (A) every undecided node draws a fresh random priority and broadcasts
//       it; a node whose priority is a strict local minimum (ties broken
//       by id) tentatively joins the MIS;
//   (B) joiners announce themselves; undecided neighbors of a joiner
//       become permanently excluded.
// With high probability O(log n) iterations decide every node.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mis/oracle.hpp"
#include "runtime/global.hpp"

namespace pslocal {

struct LubyResult {
  std::vector<VertexId> independent_set;
  std::size_t rounds = 0;      // communication rounds (2 per iteration)
  std::size_t iterations = 0;  // rounds / 2
  bool completed = false;      // all nodes decided within the round cap
  std::size_t messages_sent = 0;       // simulator bandwidth accounting
  std::size_t max_message_bytes = 0;
};

/// Run Luby's algorithm; `max_rounds` caps the simulation (default scales
/// as c*log2(n) iterations, far above the w.h.p. bound).  Round
/// evaluation fans out on `sched`; for a fixed seed the result is
/// bit-identical at every thread count (per-vertex RNG substreams).
LubyResult luby_mis(const Graph& g, std::uint64_t seed,
                    std::size_t max_rounds = 0,
                    runtime::Scheduler& sched = runtime::global_scheduler());

/// Oracle adapter: an MIS is a (Δ+1)-approximation of MaxIS (each chosen
/// vertex eliminates at most Δ optimum vertices).
class LubyOracle final : public MaxISOracle {
 public:
  explicit LubyOracle(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] std::vector<VertexId> solve(const Graph& g) override;
  [[nodiscard]] std::string name() const override { return "luby-mis"; }

 private:
  std::uint64_t seed_;
};

}  // namespace pslocal
