// Linial's deterministic O(log* n)-round coloring [Lin92] — the paper's
// opening reference: "The question whether the MIS problem has a
// polylogarithmic time deterministic algorithm dates back to Linial's
// seminal paper."  Linial's algorithm is the fast *deterministic* LOCAL
// baseline: it reduces unique ids to O(Δ² log² Δ) colors in O(log* n)
// rounds (after which color_reduction/mis_from_coloring finish the job in
// degree-dependent time — fast only for small Δ, which is exactly the gap
// the P-SLOCAL theory probes).
//
// One Linial step: view the current color (range R) in base q as the
// coefficient vector of a polynomial p_v of degree d over F_q, with q a
// prime satisfying q > Δ·d and q^{d+1} >= R.  Two distinct degree-<=d
// polynomials agree on at most d points, so among q evaluation points at
// most Δ·d < q are "bad" (collide with some neighbor); node v picks the
// smallest good x and recolors to x·q + p_v(x) < q².  The range shrinks
// R -> O((Δ log R)²), reaching a fixed point R* = O(Δ² log² Δ) after
// O(log* R) iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

struct LinialResult {
  std::vector<std::size_t> coloring;  // proper, 0-based
  std::size_t colors_range = 0;       // final range R* (colors < R*)
  std::size_t rounds = 0;             // LOCAL rounds used
  std::vector<std::size_t> range_trace;  // R after each step (incl. start)
};

/// Run Linial's color reduction starting from the trivial id-coloring
/// (range n).  Deterministic; stops when the range stops shrinking.
LinialResult linial_coloring(const Graph& g);

/// Smallest prime strictly greater than x (helper, exposed for tests).
std::size_t next_prime_above(std::size_t x);

}  // namespace pslocal
