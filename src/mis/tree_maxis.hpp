// Exact maximum independent set on forests in linear time (the textbook
// two-state DP).  Serves as (a) a large-scale exact reference for testing
// the branch-and-bound and the SLOCAL ball-carving guarantee on trees, and
// (b) a demonstration that alpha is easy on the graph classes where LOCAL
// algorithms are easy too.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

/// True iff g is a forest (acyclic).
bool is_forest(const Graph& g);

/// A maximum independent set of a forest.  Precondition: is_forest(g).
std::vector<VertexId> tree_maxis(const Graph& g);

/// alpha(g) for forests, without materializing the set.
std::size_t tree_independence_number(const Graph& g);

}  // namespace pslocal
