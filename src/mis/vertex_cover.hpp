// Minimum vertex cover — the complement view of MaxIS (Gallai:
// alpha(G) + tau(G) = n).  Included because it ties the library's pieces
// together: the matching module yields the classic 2-approximation, and
// the exact MaxIS solver yields exact covers by complementation.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

/// True iff every edge has an endpoint in `cover`.
bool is_vertex_cover(const Graph& g, const std::vector<VertexId>& cover);

/// 2-approximation: both endpoints of every edge of a maximal matching.
std::vector<VertexId> matching_vertex_cover(const Graph& g);

/// Exact minimum vertex cover = V \ (exact MaxIS); small graphs only.
std::vector<VertexId> exact_vertex_cover(const Graph& g);

}  // namespace pslocal
