// MIS repair: after a mutation, re-solve only the ball around the dirty
// region instead of recomputing the whole independent set.
//
// The contract mirrors the paper's P-SLOCAL locality argument: a bounded
// edit to the hypergraph only changes G_k edges incident to the touched
// blocks (core/dynamic_conflict_graph.hpp), so membership only needs to
// be revisited where adjacency actually changed.  Repair runs two
// deterministic ascending-id sweeps:
//
//   Phase A (conflict removal) over Ball1 = dirty ∪ N(dirty): drop a
//   member v if a surviving member u < v is adjacent.  (With deltas from
//   DynamicConflictGraph this is usually a no-op — every fresh G_k edge
//   has a fresh endpoint, and fresh triple ids are never in the old MIS —
//   but it keeps repair correct for arbitrary seed sets.)
//
//   Phase B (re-maximalization) over Ball2 = Ball1 ∪ N(removed in A):
//   add v if it has no member neighbor.  Every vertex whose member
//   neighborhood shrank is in Ball2: lose a neighbor to phase A and you
//   are in N(removed); lose one to the mutation itself and your
//   adjacency changed, so you are dirty.
//
// Both sweeps are sequential and id-ordered, so the repaired MIS is a
// pure function of (graph, old set, dirty) — byte-identical across
// thread counts, which is what the replay and shard-fanout tests pin.
// The differential oracle (qc/oracles.hpp, mis_repair_vs_recompute)
// checks repair output against full recomputation on the rebuilt G_k.
#pragma once

#include <vector>

#include "core/dynamic_conflict_graph.hpp"
#include "graph/graph.hpp"

namespace pslocal {

struct RepairResult {
  /// The repaired independent set, ascending.  Maximal whenever the
  /// input set was maximal away from the dirty region.
  std::vector<VertexId> mis;
  /// Every vertex the repair examined (Ball2), ascending — the qc
  /// locality check asserts the old/new symmetric difference is inside.
  std::vector<VertexId> ball;
  /// Members dropped in phase A, ascending.
  std::vector<VertexId> removed;
  /// Vertices added in phase B, ascending.
  std::vector<VertexId> added;
};

/// Carry an id-space set across a mutation: keep survivors (remapped),
/// drop kRemoved entries.  `remap` is Delta::remap; strict monotonicity
/// over survivors means a sorted input stays sorted.  If `dropped` is
/// non-null it receives the number of entries that died.
[[nodiscard]] std::vector<VertexId> remap_surviving(
    const std::vector<VertexId>& set, const std::vector<TripleId>& remap,
    std::size_t* dropped = nullptr);

/// Repair `old_mis` (sorted, already remapped into g's current id space,
/// independent outside the dirty region) around `dirty` (sorted post-
/// mutation ids, e.g. Delta::dirty).
[[nodiscard]] RepairResult repair_mis(const DynamicConflictGraph& g,
                                      const std::vector<VertexId>& old_mis,
                                      const std::vector<TripleId>& dirty);

}  // namespace pslocal
