#include "mis/repair.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pslocal {

std::vector<VertexId> remap_surviving(const std::vector<VertexId>& set,
                                      const std::vector<TripleId>& remap,
                                      std::size_t* dropped) {
  std::vector<VertexId> out;
  out.reserve(set.size());
  std::size_t died = 0;
  for (const VertexId v : set) {
    PSL_EXPECTS(v < remap.size());
    const TripleId nv = remap[v];
    if (nv == DynamicConflictGraph::kRemoved)
      ++died;
    else
      out.push_back(static_cast<VertexId>(nv));
  }
  if (dropped != nullptr) *dropped = died;
  return out;
}

RepairResult repair_mis(const DynamicConflictGraph& g,
                        const std::vector<VertexId>& old_mis,
                        const std::vector<TripleId>& dirty) {
  const std::size_t n = g.triple_count();
  std::vector<char> member(n, 0);
  for (const VertexId v : old_mis) {
    PSL_EXPECTS(v < n);
    member[v] = 1;
  }

  // Ball1 = dirty ∪ N(dirty).
  std::vector<char> in_ball(n, 0);
  std::vector<VertexId> ball;
  const auto grow = [&](const VertexId v) {
    if (in_ball[v]) return;
    in_ball[v] = 1;
    ball.push_back(v);
  };
  for (const TripleId t : dirty) {
    PSL_EXPECTS(t < n);
    const auto v = static_cast<VertexId>(t);
    grow(v);
    for (const TripleId nb : g.neighbors(v)) grow(static_cast<VertexId>(nb));
  }
  std::sort(ball.begin(), ball.end());

  // Phase A: ascending conflict removal inside Ball1.
  RepairResult result;
  for (const VertexId v : ball) {
    if (!member[v]) continue;
    for (const TripleId nb : g.neighbors(v)) {
      if (nb < v && member[nb]) {
        member[v] = 0;
        result.removed.push_back(v);
        break;
      }
    }
  }

  // Ball2 = Ball1 ∪ N(removed in A).
  std::vector<VertexId> extra;
  for (const VertexId v : result.removed)
    for (const TripleId nb : g.neighbors(v)) {
      const auto u = static_cast<VertexId>(nb);
      if (!in_ball[u]) {
        in_ball[u] = 1;
        extra.push_back(u);
      }
    }
  if (!extra.empty()) {
    ball.insert(ball.end(), extra.begin(), extra.end());
    std::sort(ball.begin(), ball.end());
  }

  // Phase B: ascending re-maximalization inside Ball2.
  for (const VertexId v : ball) {
    if (member[v]) continue;
    bool blocked = false;
    for (const TripleId nb : g.neighbors(v)) {
      if (member[nb]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      member[v] = 1;
      result.added.push_back(v);
    }
  }

  result.mis.reserve(old_mis.size() + result.added.size());
  for (VertexId v = 0; v < n; ++v)
    if (member[v]) result.mis.push_back(v);
  result.ball = std::move(ball);
  return result;
}

}  // namespace pslocal
