#include "mis/independent_set.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pslocal {

bool is_independent_set(const Graph& g, const std::vector<VertexId>& set) {
  std::vector<bool> in(g.vertex_count(), false);
  for (VertexId v : set) {
    if (v >= g.vertex_count() || in[v]) return false;
    in[v] = true;
  }
  for (VertexId v : set)
    for (VertexId w : g.neighbors(v))
      if (in[w]) return false;
  return true;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<VertexId>& set) {
  if (!is_independent_set(g, set)) return false;
  const auto in = membership_flags(g, set);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (in[v]) continue;
    const bool has_neighbor_in_set =
        std::any_of(g.neighbors(v).begin(), g.neighbors(v).end(),
                    [&](VertexId w) { return in[w]; });
    if (!has_neighbor_in_set) return false;
  }
  return true;
}

std::vector<bool> membership_flags(const Graph& g,
                                   const std::vector<VertexId>& set) {
  std::vector<bool> in(g.vertex_count(), false);
  for (VertexId v : set) {
    PSL_EXPECTS(v < g.vertex_count());
    in[v] = true;
  }
  return in;
}

std::vector<VertexId> extend_to_maximal(const Graph& g,
                                        std::vector<VertexId> set) {
  PSL_EXPECTS(is_independent_set(g, set));
  auto blocked = membership_flags(g, set);
  for (VertexId v : set)
    for (VertexId w : g.neighbors(v)) blocked[w] = true;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (blocked[v]) continue;
    set.push_back(v);
    for (VertexId w : g.neighbors(v)) blocked[w] = true;
    blocked[v] = true;
  }
  return set;
}

}  // namespace pslocal
