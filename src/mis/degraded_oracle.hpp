// Controlled-λ MaxIS oracle.
//
// The hardness proof's phase analysis uses *only* the guarantee
// |I_i| >= α(G)/λ.  To test the predicted bounds (phases <= λ ln m + 1,
// |E_{i+1}| <= (1 - 1/λ)|E_i|) with a *known* λ, this oracle computes an
// exact maximum independent set and deliberately returns only the first
// ⌈α/λ⌉ vertices — realizing the guarantee with equality up to rounding.
// Experiment E4 (bench_phases_vs_lambda) sweeps λ through this oracle.
#pragma once

#include "mis/exact_maxis.hpp"
#include "mis/oracle.hpp"

namespace pslocal {

class ControlledLambdaOracle final : public MaxISOracle {
 public:
  explicit ControlledLambdaOracle(double lambda,
                                  std::uint64_t node_budget = 20'000'000)
      : lambda_(lambda), solver_(node_budget) {
    PSL_EXPECTS(lambda >= 1.0);
  }

  [[nodiscard]] std::vector<VertexId> solve(const Graph& g) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<double> lambda_guarantee() const override {
    return lambda_;
  }

 private:
  double lambda_;
  ExactMaxIS solver_;
};

}  // namespace pslocal
