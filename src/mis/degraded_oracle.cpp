#include "mis/degraded_oracle.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pslocal {

std::vector<VertexId> ControlledLambdaOracle::solve(const Graph& g) {
  auto res = solver_.solve(g);
  PSL_CHECK_MSG(res.proven_optimal,
                "controlled-lambda oracle needs exact alpha; budget "
                "exhausted on n="
                    << g.vertex_count());
  const auto alpha = static_cast<double>(res.set.size());
  const auto keep = static_cast<std::size_t>(
      std::max(std::ceil(alpha / lambda_),
               res.set.empty() ? 0.0 : 1.0));
  std::sort(res.set.begin(), res.set.end());  // deterministic truncation
  if (res.set.size() > keep) res.set.resize(keep);
  return res.set;
}

std::string ControlledLambdaOracle::name() const {
  std::ostringstream os;
  os << "controlled(lambda=" << lambda_ << ")";
  return os.str();
}

}  // namespace pslocal
