// Greedy independent-set algorithms.
//
//  * Min-degree greedy: repeatedly add a vertex of minimum degree in the
//    remaining graph and delete its closed neighborhood.  Guarantees a
//    (Δ+2)/3-approximation of MaxIS (Halldórsson & Radhakrishnan, 1997),
//    and its output is always an MIS (inclusion maximal).
//
//  * Random-order greedy: greedy MIS along a random permutation — the
//    SLOCAL(1) MIS algorithm from the paper's introduction, run with a
//    random order.  Always an MIS; any MIS is a (Δ+1)-approximation of
//    MaxIS (each chosen vertex blocks at most Δ optimal vertices).
//
//  * Clique-cover greedy: structure-aware heuristic for conflict graphs —
//    greedily cover V by cliques (each hyperedge's triples form a clique,
//    so the cover is small) and pick at most one compatible vertex per
//    clique, smallest cliques first.
#pragma once

#include "graph/graph.hpp"
#include "mis/oracle.hpp"
#include "runtime/global.hpp"
#include "util/rng.hpp"

namespace pslocal {

/// Greedy MIS along the given processing order (joins if no earlier
/// neighbor joined).  This is exactly the paper's SLOCAL(1) MIS.
std::vector<VertexId> greedy_mis_in_order(const Graph& g,
                                          const std::vector<VertexId>& order);

/// Min-degree greedy (see header comment).  The per-iteration argmin
/// scan — the quadratic hot path on conflict graphs — fans out on
/// `sched` with a (degree, id) tie-break that reproduces the sequential
/// scan's pick exactly, so the output is identical at every thread count.
std::vector<VertexId> greedy_min_degree_maxis(
    const Graph& g,
    runtime::Scheduler& sched = runtime::global_scheduler());

/// Clique-cover greedy (see header comment).
std::vector<VertexId> clique_cover_greedy_maxis(const Graph& g);

class GreedyMinDegreeOracle final : public MaxISOracle {
 public:
  [[nodiscard]] std::vector<VertexId> solve(const Graph& g) override {
    return greedy_min_degree_maxis(g);
  }
  [[nodiscard]] std::string name() const override { return "greedy-mindeg"; }
};

class RandomGreedyOracle final : public MaxISOracle {
 public:
  explicit RandomGreedyOracle(std::uint64_t seed) : rng_(seed) {}
  [[nodiscard]] std::vector<VertexId> solve(const Graph& g) override;
  [[nodiscard]] std::string name() const override { return "greedy-random"; }

 private:
  Rng rng_;
};

class CliqueCoverGreedyOracle final : public MaxISOracle {
 public:
  [[nodiscard]] std::vector<VertexId> solve(const Graph& g) override {
    return clique_cover_greedy_maxis(g);
  }
  [[nodiscard]] std::string name() const override { return "greedy-clique"; }
};

}  // namespace pslocal
