#include "mis/exact_maxis.hpp"

#include <algorithm>

#include "mis/greedy_maxis.hpp"
#include "mis/independent_set.hpp"
#include "util/check.hpp"

namespace pslocal {

namespace {

class Searcher {
 public:
  Searcher(const Graph& g, std::uint64_t budget)
      : g_(g), n_(g.vertex_count()), budget_(budget) {
    adj_.reserve(n_);
    for (VertexId v = 0; v < n_; ++v) {
      DynamicBitset row(n_);
      for (VertexId w : g.neighbors(v)) row.set(w);
      adj_.push_back(std::move(row));
    }
  }

  ExactMaxISResult run() {
    // Warm start: seed the incumbent with the min-degree greedy solution
    // so pruning bites from the first branch (on conflict graphs the
    // greedy is typically already maximum).
    best_ = greedy_min_degree_maxis(g_);
    DynamicBitset all(n_);
    all.set_all();
    std::vector<VertexId> cur;
    cur.reserve(n_);
    expand(all, cur);
    ExactMaxISResult res;
    res.set = best_;
    res.proven_optimal = !budget_exhausted_;
    res.nodes_explored = nodes_;
    return res;
  }

 private:
  // Upper bound on the independence number of the candidate set: the size
  // of a greedy clique cover of G[P] (each clique contributes <= 1 vertex
  // to any IS).  O(|P| * cover size) bitset ops; applied at shallow depth.
  std::size_t clique_cover_bound(const DynamicBitset& candidates) const {
    std::vector<DynamicBitset> cliques;  // common-neighborhood masks
    std::size_t count = 0;
    for (std::size_t v = candidates.find_first(); v < n_;
         v = candidates.find_first(v + 1)) {
      bool placed = false;
      for (auto& common : cliques) {
        if (common.test(v)) {  // v adjacent to every member
          common &= adj_[v];
          placed = true;
          break;
        }
      }
      if (!placed) {
        cliques.push_back(adj_[static_cast<VertexId>(v)]);
        ++count;
      }
    }
    return count;
  }

  void expand(DynamicBitset candidates, std::vector<VertexId>& cur) {
    if (budget_exhausted_) return;
    if (++nodes_ > budget_) {
      budget_exhausted_ = true;
      return;
    }

    // Reductions: repeatedly take candidates with <= 1 candidate-neighbor
    // (always part of some maximum IS extending cur).
    bool reduced = true;
    std::vector<VertexId> taken_here;
    while (reduced) {
      reduced = false;
      for (std::size_t v = candidates.find_first(); v < n_;
           v = candidates.find_first(v + 1)) {
        const std::size_t d = candidates.intersection_count(adj_[v]);
        if (d == 0) {
          cur.push_back(static_cast<VertexId>(v));
          taken_here.push_back(static_cast<VertexId>(v));
          candidates.reset(v);
          reduced = true;
        } else if (d == 1) {
          cur.push_back(static_cast<VertexId>(v));
          taken_here.push_back(static_cast<VertexId>(v));
          DynamicBitset closed = adj_[v];
          closed.set(v);
          candidates.andnot(closed);
          reduced = true;
          break;  // candidate set changed; restart scan
        }
      }
    }

    const std::size_t remaining = candidates.count();
    if (remaining == 0) {
      if (cur.size() > best_.size()) best_ = cur;
    } else {
      // Prune with the cheap bound first, the clique-cover bound second.
      if (cur.size() + remaining > best_.size() &&
          cur.size() + clique_cover_bound(candidates) > best_.size()) {
        // Pivot: maximum degree within the candidate set (most constraining).
        std::size_t pivot = n_;
        std::size_t pivot_deg = 0;
        for (std::size_t v = candidates.find_first(); v < n_;
             v = candidates.find_first(v + 1)) {
          const std::size_t d = candidates.intersection_count(adj_[v]);
          if (pivot == n_ || d > pivot_deg) {
            pivot = v;
            pivot_deg = d;
          }
        }
        PSL_CHECK(pivot < n_);

        // Branch 1: pivot in the IS.
        {
          DynamicBitset next = candidates;
          DynamicBitset closed = adj_[pivot];
          closed.set(pivot);
          next.andnot(closed);
          cur.push_back(static_cast<VertexId>(pivot));
          expand(std::move(next), cur);
          cur.pop_back();
        }
        // Branch 2: pivot excluded.
        {
          DynamicBitset next = candidates;
          next.reset(pivot);
          expand(std::move(next), cur);
        }
      }
    }

    for (std::size_t i = 0; i < taken_here.size(); ++i) cur.pop_back();
  }

  const Graph& g_;
  std::size_t n_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;
  bool budget_exhausted_ = false;
  std::vector<DynamicBitset> adj_;
  std::vector<VertexId> best_;
};

}  // namespace

ExactMaxISResult ExactMaxIS::solve(const Graph& g) const {
  Searcher s(g, node_budget_);
  auto res = s.run();
  PSL_ENSURES(is_independent_set(g, res.set));
  return res;
}

std::size_t independence_number(const Graph& g) {
  const auto res = ExactMaxIS().solve(g);
  PSL_CHECK_MSG(res.proven_optimal,
                "exact MaxIS budget exhausted on n=" << g.vertex_count());
  return res.set.size();
}

std::vector<VertexId> ExactOracle::solve(const Graph& g) {
  ExactMaxISResult res = solver_.solve(g);
  // lambda_guarantee() == 1.0 is only honest for a completed search; a
  // budget-cut incumbent may be arbitrarily far from alpha(g).
  PSL_CHECK_MSG(res.proven_optimal,
                "exact oracle: node budget exhausted before optimality was "
                "proven; raise the budget or shrink the instance");
  return std::move(res.set);
}

}  // namespace pslocal
