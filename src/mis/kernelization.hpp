// Kernelization rules for maximum independent set.
//
// Classic alpha-preserving reductions applied as a preprocessing pass:
//   * isolated rule:  a degree-0 vertex is in some maximum IS — take it;
//   * pendant rule:   a degree-1 vertex is in some maximum IS — take it
//                     and delete its neighbor;
//   * domination rule: if N[u] ⊆ N[v] (u != v, adjacent), vertex v is
//                     dominated and some maximum IS avoids it — delete v.
//
// The pass returns the reduced instance, the vertices already forced into
// the solution, and the mapping back, with the invariant
//   alpha(G) = forced.size() + alpha(kernel)
// (checked against the exact solver in tests).  The branch-and-bound
// applies the first two rules internally; exposing them separately lets
// callers shrink instances once before repeated oracle calls and makes
// the invariants independently testable.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

struct MaxISKernel {
  Graph kernel;                        // the reduced graph
  std::vector<VertexId> to_original;   // kernel id -> original id
  std::vector<VertexId> forced;        // original ids already in the IS
  std::size_t isolated_applications = 0;
  std::size_t pendant_applications = 0;
  std::size_t domination_applications = 0;
};

/// Apply the three rules to exhaustion.
MaxISKernel kernelize_maxis(const Graph& g);

/// Lift a kernel solution back to the original graph (forced vertices
/// plus the translated kernel IS).  Precondition: kernel_is is an IS of
/// kernel.
std::vector<VertexId> lift_kernel_solution(
    const MaxISKernel& kernel, const std::vector<VertexId>& kernel_is);

}  // namespace pslocal

#include "mis/oracle.hpp"

namespace pslocal {

/// Oracle combinator: kernelize, solve the kernel with the inner oracle,
/// lift.  Preserves exactness (rules are alpha-preserving) and can only
/// help approximate oracles (forced vertices are optimal choices).
class KernelizedOracle final : public MaxISOracle {
 public:
  explicit KernelizedOracle(MaxISOraclePtr inner)
      : inner_(std::move(inner)) {
    PSL_EXPECTS(inner_ != nullptr);
  }

  [[nodiscard]] std::vector<VertexId> solve(const Graph& g) override {
    const auto kernel = kernelize_maxis(g);
    std::vector<VertexId> kernel_is;
    if (kernel.kernel.vertex_count() > 0)
      kernel_is = inner_->solve(kernel.kernel);
    return lift_kernel_solution(kernel, kernel_is);
  }
  [[nodiscard]] std::string name() const override {
    return "kernel+" + inner_->name();
  }
  [[nodiscard]] std::optional<double> lambda_guarantee() const override {
    return inner_->lambda_guarantee();
  }

 private:
  MaxISOraclePtr inner_;
};

}  // namespace pslocal
