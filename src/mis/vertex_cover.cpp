#include "mis/vertex_cover.hpp"

#include <numeric>

#include "mis/exact_maxis.hpp"
#include "mis/independent_set.hpp"
#include "slocal/matching.hpp"
#include "util/check.hpp"

namespace pslocal {

bool is_vertex_cover(const Graph& g, const std::vector<VertexId>& cover) {
  std::vector<bool> in(g.vertex_count(), false);
  for (VertexId v : cover) {
    if (v >= g.vertex_count()) return false;
    in[v] = true;
  }
  for (auto [u, v] : g.edges())
    if (!in[u] && !in[v]) return false;
  return true;
}

std::vector<VertexId> matching_vertex_cover(const Graph& g) {
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), VertexId{0});
  const auto matching = slocal_greedy_matching(g, order).matching;
  std::vector<VertexId> cover;
  cover.reserve(2 * matching.size());
  for (auto [u, v] : matching) {
    cover.push_back(u);
    cover.push_back(v);
  }
  PSL_ENSURES(is_vertex_cover(g, cover));
  return cover;
}

std::vector<VertexId> exact_vertex_cover(const Graph& g) {
  const auto res = ExactMaxIS().solve(g);
  PSL_CHECK_MSG(res.proven_optimal, "exact vertex cover needs exact MaxIS");
  const auto in_is = membership_flags(g, res.set);
  std::vector<VertexId> cover;
  cover.reserve(g.vertex_count() - res.set.size());
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (!in_is[v]) cover.push_back(v);
  PSL_ENSURES(is_vertex_cover(g, cover));
  return cover;
}

}  // namespace pslocal
