#include "mis/greedy_maxis.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/algorithms.hpp"
#include "mis/independent_set.hpp"
#include "runtime/parallel.hpp"
#include "util/check.hpp"

namespace pslocal {

std::vector<VertexId> greedy_mis_in_order(const Graph& g,
                                          const std::vector<VertexId>& order) {
  PSL_EXPECTS(is_vertex_permutation(g, order));
  std::vector<bool> blocked(g.vertex_count(), false);
  std::vector<VertexId> out;
  for (VertexId v : order) {
    if (blocked[v]) continue;
    out.push_back(v);
    blocked[v] = true;
    for (VertexId w : g.neighbors(v)) blocked[w] = true;
  }
  PSL_ENSURES(is_maximal_independent_set(g, out));
  return out;
}

std::vector<VertexId> greedy_min_degree_maxis(const Graph& g,
                                              runtime::Scheduler& sched) {
  const std::size_t n = g.vertex_count();
  std::vector<std::size_t> deg(n);
  // std::uint8_t, not vector<bool>: the argmin chunks read disjoint
  // ranges concurrently and must not share bytes with writers elsewhere.
  std::vector<std::uint8_t> alive(n, 1);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.degree(v);
  std::size_t alive_count = n;

  // (degree, id) candidate; the strict < on this pair reproduces the
  // sequential first-strictly-smaller scan: lowest id among min degree.
  struct Cand {
    std::size_t deg = std::numeric_limits<std::size_t>::max();
    VertexId v = 0;
    [[nodiscard]] bool beats(const Cand& o) const {
      return deg < o.deg || (deg == o.deg && v < o.v);
    }
  };

  std::vector<VertexId> out;
  while (alive_count > 0) {
    // Parallel argmin over the alive vertices.  Quadratic overall, which
    // is fine at experiment sizes; the bucket-queue variant in
    // degeneracy_order is available if this ever shows up in profiles.
    const Cand best = runtime::parallel_reduce<Cand>(
        sched, {n, 0}, Cand{},
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          Cand c;
          for (VertexId v = lo; v < hi; ++v)
            if (alive[v] && deg[v] < c.deg) c = Cand{deg[v], v};
          return c;
        },
        [](Cand a, Cand b) { return b.beats(a) ? b : a; });
    out.push_back(best.v);
    // Delete N[best]; update degrees of the 2-hop fringe.
    std::vector<VertexId> removed{best.v};
    for (VertexId w : g.neighbors(best.v))
      if (alive[w]) removed.push_back(w);
    for (VertexId r : removed) {
      alive[r] = 0;
      --alive_count;
    }
    for (VertexId r : removed)
      for (VertexId w : g.neighbors(r))
        if (alive[w]) --deg[w];
  }
  PSL_ENSURES(is_maximal_independent_set(g, out));
  return out;
}

std::vector<VertexId> clique_cover_greedy_maxis(const Graph& g) {
  const auto cover = greedy_clique_cover(g);
  // Group vertices by clique, then visit cliques smallest-first: small
  // cliques have fewer alternatives, so serving them early loses less.
  std::vector<std::vector<VertexId>> members(cover.count);
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    members[cover.clique_of[v]].push_back(v);
  std::vector<std::size_t> clique_order(cover.count);
  std::iota(clique_order.begin(), clique_order.end(), std::size_t{0});
  std::stable_sort(clique_order.begin(), clique_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return members[a].size() < members[b].size();
                   });

  std::vector<bool> blocked(g.vertex_count(), false);
  std::vector<VertexId> out;
  for (std::size_t c : clique_order) {
    // Pick the compatible member that blocks the fewest outside vertices.
    VertexId pick = InducedSubgraph::kNoVertex;
    std::size_t pick_deg = std::numeric_limits<std::size_t>::max();
    for (VertexId v : members[c]) {
      if (!blocked[v] && g.degree(v) < pick_deg) {
        pick = v;
        pick_deg = g.degree(v);
      }
    }
    if (pick == InducedSubgraph::kNoVertex) continue;
    out.push_back(pick);
    blocked[pick] = true;
    for (VertexId w : g.neighbors(pick)) blocked[w] = true;
  }
  PSL_ENSURES(is_independent_set(g, out));
  return out;
}

std::vector<VertexId> RandomGreedyOracle::solve(const Graph& g) {
  const auto perm = rng_.permutation(g.vertex_count());
  std::vector<VertexId> order(perm.begin(), perm.end());
  return greedy_mis_in_order(g, order);
}

}  // namespace pslocal
