// Independent-set predicates shared by every IS algorithm and checker.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

/// True iff `set` has distinct in-range vertices and no two are adjacent.
bool is_independent_set(const Graph& g, const std::vector<VertexId>& set);

/// True iff `set` is independent and no vertex can be added (inclusion
/// maximal — the "MIS" of the paper's introduction).
bool is_maximal_independent_set(const Graph& g,
                                const std::vector<VertexId>& set);

/// Membership flags for a vertex set.
std::vector<bool> membership_flags(const Graph& g,
                                   const std::vector<VertexId>& set);

/// Extend `set` greedily to an inclusion-maximal independent set by adding
/// vertices in ascending id order.  Precondition: `set` is independent.
std::vector<VertexId> extend_to_maximal(const Graph& g,
                                        std::vector<VertexId> set);

}  // namespace pslocal
