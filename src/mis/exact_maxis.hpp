// Exact maximum independent set via branch and bound.
//
// Used (a) as the λ=1 oracle on small instances, (b) inside the SLOCAL
// ball-carving algorithm (SLOCAL nodes have unbounded local computation;
// the model only charges locality), and (c) by tests/experiments that need
// the true independence number α(G).
//
// The search uses bitset candidate sets, a greedy clique-cover upper bound
// at shallow depths, and the standard degree-0/1 reductions.  A node
// budget bounds worst-case blowup; results report whether optimality was
// proven.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mis/oracle.hpp"
#include "util/bitset.hpp"

namespace pslocal {

struct ExactMaxISResult {
  std::vector<VertexId> set;    // best independent set found
  bool proven_optimal = false;  // true iff the search completed
  std::uint64_t nodes_explored = 0;
};

class ExactMaxIS {
 public:
  /// node_budget bounds the number of branch-and-bound nodes explored.
  explicit ExactMaxIS(std::uint64_t node_budget = 20'000'000)
      : node_budget_(node_budget) {}

  [[nodiscard]] ExactMaxISResult solve(const Graph& g) const;

 private:
  std::uint64_t node_budget_;
};

/// α(g), requiring the search to complete within the default budget.
std::size_t independence_number(const Graph& g);

/// λ=1 oracle adapter.  The guarantee is enforced: solve() PSL_CHECKs
/// that the search completed (proven_optimal), so a budget-cut answer
/// fails loudly instead of silently breaking the λ=1 contract the qc
/// differential bounds rely on.
class ExactOracle final : public MaxISOracle {
 public:
  explicit ExactOracle(std::uint64_t node_budget = 20'000'000)
      : solver_(node_budget) {}
  [[nodiscard]] std::vector<VertexId> solve(const Graph& g) override;
  [[nodiscard]] std::string name() const override { return "exact"; }
  [[nodiscard]] std::optional<double> lambda_guarantee() const override {
    return 1.0;
  }

 private:
  ExactMaxIS solver_;
};

}  // namespace pslocal
