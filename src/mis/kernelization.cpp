#include "mis/kernelization.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "mis/independent_set.hpp"
#include "util/check.hpp"

namespace pslocal {

namespace {

/// Alive-masked degree and neighbor iteration helpers.
std::size_t alive_degree(const Graph& g, const std::vector<bool>& alive,
                         VertexId v) {
  std::size_t d = 0;
  for (VertexId w : g.neighbors(v))
    if (alive[w]) ++d;
  return d;
}

/// Closed-neighborhood containment N[u] ⊆ N[v] on the alive subgraph,
/// for adjacent alive u, v.
bool closed_dominates(const Graph& g, const std::vector<bool>& alive,
                      VertexId u, VertexId v) {
  for (VertexId w : g.neighbors(u)) {
    if (!alive[w] || w == v) continue;
    if (!g.has_edge(v, w)) return false;
  }
  return true;
}

}  // namespace

MaxISKernel kernelize_maxis(const Graph& g) {
  const std::size_t n = g.vertex_count();
  MaxISKernel out;
  std::vector<bool> alive(n, true);

  bool changed = true;
  while (changed) {
    changed = false;
    // Isolated + pendant rules.
    for (VertexId v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      const std::size_t d = alive_degree(g, alive, v);
      if (d == 0) {
        out.forced.push_back(v);
        alive[v] = false;
        ++out.isolated_applications;
        changed = true;
      } else if (d == 1) {
        out.forced.push_back(v);
        alive[v] = false;
        for (VertexId w : g.neighbors(v))
          if (alive[w]) alive[w] = false;
        ++out.pendant_applications;
        changed = true;
      }
    }
    // Domination rule: for an alive edge {u, v} with N[u] ⊆ N[v], delete v.
    for (VertexId u = 0; u < n && !changed; ++u) {
      if (!alive[u]) continue;
      for (VertexId v : g.neighbors(u)) {
        if (!alive[v]) continue;
        if (closed_dominates(g, alive, u, v)) {
          alive[v] = false;
          ++out.domination_applications;
          changed = true;
          break;
        }
      }
    }
  }

  std::vector<VertexId> survivors;
  for (VertexId v = 0; v < n; ++v)
    if (alive[v]) survivors.push_back(v);
  auto sub = induced_subgraph(g, survivors);
  out.kernel = std::move(sub.graph);
  out.to_original = std::move(sub.to_original);
  PSL_ENSURES(is_independent_set(g, out.forced));
  return out;
}

std::vector<VertexId> lift_kernel_solution(
    const MaxISKernel& kernel, const std::vector<VertexId>& kernel_is) {
  PSL_EXPECTS(is_independent_set(kernel.kernel, kernel_is));
  std::vector<VertexId> out = kernel.forced;
  for (VertexId kv : kernel_is) out.push_back(kernel.to_original[kv]);
  return out;
}

}  // namespace pslocal
