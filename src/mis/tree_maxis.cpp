#include "mis/tree_maxis.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "mis/independent_set.hpp"
#include "util/check.hpp"

namespace pslocal {

bool is_forest(const Graph& g) {
  const auto comp = connected_components(g);
  // A graph is a forest iff m = n - #components.
  return g.edge_count() + comp.count == g.vertex_count();
}

namespace {

struct DpEntry {
  std::size_t with = 1;     // alpha of subtree if the root is taken
  std::size_t without = 0;  // alpha of subtree if the root is skipped
};

/// Iterative post-order DP over one tree component rooted at `root`.
void solve_component(const Graph& g, VertexId root,
                     std::vector<DpEntry>& dp,
                     std::vector<VertexId>& parent,
                     std::vector<VertexId>& postorder) {
  constexpr VertexId kNone = static_cast<VertexId>(-1);
  std::vector<VertexId> stack{root};
  parent[root] = root;
  std::vector<VertexId> order;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (VertexId w : g.neighbors(v)) {
      if (parent[w] == kNone) {
        parent[w] = v;
        stack.push_back(w);
      }
    }
  }
  // Children accumulate into parents in reverse discovery order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId v = *it;
    postorder.push_back(v);
    if (v != root) {
      const VertexId p = parent[v];
      dp[p].with += dp[v].without;
      dp[p].without += std::max(dp[v].with, dp[v].without);
    }
  }
}

}  // namespace

std::vector<VertexId> tree_maxis(const Graph& g) {
  PSL_EXPECTS(is_forest(g));
  constexpr VertexId kNone = static_cast<VertexId>(-1);
  const std::size_t n = g.vertex_count();
  std::vector<DpEntry> dp(n);
  std::vector<VertexId> parent(n, kNone);
  std::vector<VertexId> postorder;
  std::vector<VertexId> roots;
  for (VertexId v = 0; v < n; ++v) {
    if (parent[v] == kNone) {
      roots.push_back(v);
      solve_component(g, v, dp, parent, postorder);
    }
  }
  // Reconstruct: walk top-down; a vertex is taken iff its branch decided
  // "with" and its parent was not taken.
  std::vector<bool> taken(n, false);
  // Process in reverse postorder (parents before children).
  for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
    const VertexId v = *it;
    const bool is_root = parent[v] == v;
    const bool parent_taken = !is_root && taken[parent[v]];
    taken[v] = !parent_taken && dp[v].with > dp[v].without;
  }
  std::vector<VertexId> out;
  for (VertexId v = 0; v < n; ++v)
    if (taken[v]) out.push_back(v);
  PSL_ENSURES(is_independent_set(g, out));
  return out;
}

std::size_t tree_independence_number(const Graph& g) {
  return tree_maxis(g).size();
}

}  // namespace pslocal
