// The λ-approximation oracle abstraction of the hardness proof.
//
// Proof of Theorem 1.1: "Assume that we can compute λ-approximations for
// MaxIS ..." — the reduction is generic in the MaxIS algorithm it invokes
// once per phase.  Every IS algorithm in the library implements this
// interface so the reduction, the experiment harnesses, and the examples
// can swap them freely.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

class MaxISOracle {
 public:
  virtual ~MaxISOracle() = default;

  /// Return an independent set of g.  Implementations must return a valid
  /// independent set on every input (the reduction re-verifies).
  [[nodiscard]] virtual std::vector<VertexId> solve(const Graph& g) = 0;

  /// Human-readable identifier for tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// The λ such that |solve(g)| >= α(g)/λ is guaranteed, if the algorithm
  /// has a proven worst-case guarantee; nullopt for heuristics.
  [[nodiscard]] virtual std::optional<double> lambda_guarantee() const {
    return std::nullopt;
  }
};

using MaxISOraclePtr = std::unique_ptr<MaxISOracle>;

}  // namespace pslocal
