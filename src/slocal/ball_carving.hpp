// SLOCAL ball-carving MaxIS approximation — the *containment* side of
// Theorem 1.1 ("The containment was proven in [GKM17, Theorem 7.1]").
//
// The algorithm (ball carving with a doubling stop rule, the standard
// technique behind the SLOCAL approximation results of [GKM17]/[GHK18]):
//
//   Process nodes in an arbitrary order.  When v is processed and still
//   active, grow a ball radius r = 0, 1, 2, ... and let a(r) be the
//   independence number of the subgraph induced by the *active* vertices
//   of B(v, r).  Stop at the first r with a(r+1) <= 2 a(r); such an r
//   exists with r <= log2(n) because otherwise a doubles each step and
//   a(r) >= 2^r would exceed n.  Take an exact maximum independent set
//   I_v of the active part of B(v, r), output it, and deactivate every
//   active vertex of B(v, r+1).
//
// Guarantees (checked empirically in E6/E8, proof sketch):
//  * Independence: neighbors of I_v lie in B(v, r+1) and are deactivated,
//    so no later pick can conflict; earlier picks had *their* neighborhoods
//    deactivated, and I_v consists of still-active vertices.
//  * 2-approximation: the carved regions R_v (active ∩ B(v, r+1))
//    partition V; OPT ∩ R_v is an IS of the active part of B(v, r+1), so
//    |OPT ∩ R_v| <= a(r+1) <= 2 a(r) = 2 |I_v|; summing gives
//    |OPT| <= 2 |ALG|.
//  * Locality: r + 1 <= log2(n) + 1 (measured by the engine).
//
// SLOCAL nodes have unbounded local computation, so using an exact solver
// inside balls is model-faithful; the node budget caps wall-clock time on
// adversarial inputs (proven_optimal is checked).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mis/oracle.hpp"

namespace pslocal {

struct BallCarvingResult {
  std::vector<VertexId> independent_set;
  std::size_t locality = 0;       // max r+1 over all carves
  std::size_t carve_count = 0;    // number of balls carved
  std::size_t max_radius = 0;     // max r over all carves
};

/// Inner solver used on the active part of each ball.
///  * kExact — model-faithful (SLOCAL computation is free) with the
///    proven 2-approximation; wall-clock cost grows quickly on dense
///    balls.
///  * kGreedy — min-degree greedy inside balls; the doubling rule then
///    applies to the greedy value, so the locality bound survives but the
///    2-approximation is only empirical (measured in E8).  Use for large
///    or dense graphs.
enum class BallCarvingInner { kExact, kGreedy };

/// Run ball carving in the given processing order.
/// `node_budget` bounds each inner exact-MaxIS search (kExact only).
BallCarvingResult ball_carving_maxis(
    const Graph& g, const std::vector<VertexId>& order,
    std::uint64_t node_budget = 20'000'000,
    BallCarvingInner inner = BallCarvingInner::kExact);

/// Oracle adapter (processes nodes in id order): a 2-approximation with
/// O(log n) SLOCAL locality.
class BallCarvingOracle final : public MaxISOracle {
 public:
  explicit BallCarvingOracle(std::uint64_t node_budget = 20'000'000,
                             BallCarvingInner inner = BallCarvingInner::kExact)
      : node_budget_(node_budget), inner_(inner) {}
  [[nodiscard]] std::vector<VertexId> solve(const Graph& g) override;
  [[nodiscard]] std::string name() const override {
    return inner_ == BallCarvingInner::kExact ? "slocal-carving"
                                              : "slocal-carving-greedy";
  }
  [[nodiscard]] std::optional<double> lambda_guarantee() const override {
    if (inner_ == BallCarvingInner::kExact) return 2.0;
    return std::nullopt;  // greedy inner: guarantee is empirical only
  }

 private:
  std::uint64_t node_budget_;
  BallCarvingInner inner_;
};

}  // namespace pslocal
