// Greedy maximal matching in the SLOCAL model — the second classic
// member of the "SLOCAL(1) but deterministically hard in LOCAL" family
// alongside MIS: processing nodes in any order, an unmatched node grabs
// its smallest unmatched neighbor.  The result is a maximal matching,
// hence a 2-approximation of the maximum matching — the matching analogue
// of the containment results accompanying Theorem 7.1 of [GKM17].
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

using Matching = std::vector<std::pair<VertexId, VertexId>>;

/// True iff `m` is a matching (edges of g, pairwise disjoint endpoints).
bool is_matching(const Graph& g, const Matching& m);

/// True iff maximal (no g-edge with both endpoints unmatched).
bool is_maximal_matching(const Graph& g, const Matching& m);

struct SLocalMatchingResult {
  Matching matching;
  std::size_t locality = 0;  // 1 on any graph with an edge
};

/// Greedy SLOCAL matching along `order`.
SLocalMatchingResult slocal_greedy_matching(const Graph& g,
                                            const std::vector<VertexId>& order);

/// Exact maximum matching size by branch and bound (small graphs) —
/// reference for approximation-ratio tests.
std::size_t maximum_matching_size(const Graph& g);

}  // namespace pslocal
