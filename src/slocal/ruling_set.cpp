#include "slocal/ruling_set.hpp"

#include "graph/algorithms.hpp"
#include "slocal/engine.hpp"
#include "util/check.hpp"

namespace pslocal {

namespace {
enum class RulingMark : std::uint8_t { kOut, kIn };
}

RulingSetResult slocal_ruling_set(const Graph& g, std::size_t alpha,
                                  const std::vector<VertexId>& order) {
  PSL_EXPECTS(alpha >= 1);
  auto run = run_slocal<RulingMark>(
      g, std::vector<RulingMark>(g.vertex_count(), RulingMark::kOut), order,
      [alpha](SLocalView<RulingMark>& view) {
        // Join unless an earlier member sits within alpha-1 hops.
        bool blocked = false;
        if (alpha >= 2) {
          for (VertexId u : view.ball_vertices(alpha - 1)) {
            if (u != view.center() &&
                view.state(u) == RulingMark::kIn) {
              blocked = true;
              break;
            }
          }
        }
        if (!blocked) view.own_state() = RulingMark::kIn;
      });

  RulingSetResult res;
  res.locality = run.max_locality;
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (run.states[v] == RulingMark::kIn) res.ruling_set.push_back(v);
  PSL_ENSURES(is_ruling_set(g, res.ruling_set, alpha,
                            alpha >= 2 ? alpha - 1 : 0));
  return res;
}

bool is_ruling_set(const Graph& g, const std::vector<VertexId>& set,
                   std::size_t alpha, std::size_t beta) {
  if (set.empty()) return g.vertex_count() == 0;
  for (VertexId v : set)
    if (v >= g.vertex_count()) return false;
  const auto dist = bfs_distances_multi(g, set);
  // Coverage: every vertex within beta of the set.
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (dist[v] == kUnreachable || dist[v] > beta) return false;
  // Separation: members pairwise >= alpha apart.
  for (VertexId s : set) {
    const auto d = bfs_distances(g, s, alpha);
    for (VertexId t : set)
      if (t != s && d[t] != kUnreachable && d[t] < alpha) return false;
  }
  return true;
}

}  // namespace pslocal
