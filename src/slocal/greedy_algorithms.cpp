#include "slocal/greedy_algorithms.hpp"

#include <algorithm>

#include "coloring/coloring.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {

namespace {
enum class MisMark : std::uint8_t { kUndecided, kIn, kOut };
}

SLocalMisResult slocal_greedy_mis(const Graph& g,
                                  const std::vector<VertexId>& order) {
  auto run = run_slocal<MisMark>(
      g, std::vector<MisMark>(g.vertex_count(), MisMark::kUndecided), order,
      [](SLocalView<MisMark>& view) {
        bool neighbor_in = false;
        for (VertexId w : view.neighbors()) {
          if (view.state(w) == MisMark::kIn) {
            neighbor_in = true;
            break;
          }
        }
        view.own_state() = neighbor_in ? MisMark::kOut : MisMark::kIn;
      });

  SLocalMisResult res;
  res.locality = run.max_locality;
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (run.states[v] == MisMark::kIn) res.independent_set.push_back(v);
  PSL_ENSURES(is_maximal_independent_set(g, res.independent_set));
  return res;
}

SLocalColoringResult slocal_greedy_coloring(
    const Graph& g, const std::vector<VertexId>& order) {
  auto run = run_slocal<std::size_t>(
      g, std::vector<std::size_t>(g.vertex_count(), kNoColor), order,
      [&g](SLocalView<std::size_t>& view) {
        std::vector<bool> used(g.degree(view.center()) + 1, false);
        for (VertexId w : view.neighbors()) {
          const std::size_t c = view.state(w);
          if (c != kNoColor && c < used.size()) used[c] = true;
        }
        std::size_t c = 0;
        while (used[c]) ++c;
        view.own_state() = c;
      });

  SLocalColoringResult res;
  res.coloring = std::move(run.states);
  res.locality = run.max_locality;
  res.colors_used = color_count(res.coloring);
  PSL_ENSURES(is_proper_coloring(g, res.coloring));
  PSL_ENSURES(res.colors_used <= g.max_degree() + 1);
  return res;
}

}  // namespace pslocal
