// Named processing-order strategies for SLOCAL algorithms.
//
// The SLOCAL model quantifies over *arbitrary* orders ("the nodes of the
// network graph are processed in an arbitrary order"), so every SLOCAL
// algorithm in this library is correct for all of them; quality and
// measured locality, however, can vary.  These strategies feed the
// order-sensitivity ablation (bench_order_ablation) and give tests a
// vocabulary of adversarial-ish orders.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace pslocal {

enum class OrderStrategy {
  kIdentity,        // ascending ids
  kReverse,         // descending ids
  kRandom,          // uniform shuffle (seeded)
  kDegreeAscending, // min-degree first (stable)
  kDegreeDescending,// max-degree first (stable)
  kBfs,             // BFS layers from vertex 0, component by component
  kDegeneracy,      // Matula–Beck elimination order
};

/// All strategies, for sweeps.
const std::vector<OrderStrategy>& all_order_strategies();

std::string to_string(OrderStrategy strategy);

/// Materialize the order for a graph (seed only used by kRandom).
std::vector<VertexId> make_order(const Graph& g, OrderStrategy strategy,
                                 std::uint64_t seed = 0);

}  // namespace pslocal
