// (C, D) network decompositions via sequential ball growing.
//
// A (C, D) network decomposition partitions V into clusters such that each
// cluster has weak diameter <= D in G and the cluster graph (clusters
// adjacent iff some G-edge joins them) is properly C-colorable, with the
// coloring given explicitly.  (poly log n, poly log n) decompositions are
// one of the original P-SLOCAL-complete problems [GKM17], and they are the
// engine that converts SLOCAL algorithms into LOCAL ones (see
// local/slocal_compiler.*) — the reason P-SLOCAL-completeness matters for
// derandomization.
//
// Construction (classic sequential ball growing, SLOCAL-implementable with
// locality O(log^2 n); we account the max carving radius):
//   U := V.  For color class c = 0, 1, ...: scan nodes; every node of U
//   not yet blocked for this class grows a ball in G[U] until
//   |B(r+1)| <= 2 |B(r)|, forms cluster B(r) with color c, removes it from
//   U and blocks the boundary ring B(r+1) \ B(r) for the rest of the
//   class.  Per class at least half of U is clustered (each cluster is at
//   least as big as the ring it blocks), so C <= ceil(log2 n) + 1; the
//   doubling rule caps radii at log2 n, so D <= 2 log2 n; rings separate
//   same-class clusters, so the class index properly colors the cluster
//   graph.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

struct NetworkDecomposition {
  std::vector<std::size_t> cluster_of;       // vertex -> cluster id
  std::vector<std::size_t> color_of_cluster; // cluster id -> color
  std::size_t cluster_count = 0;
  std::size_t color_count = 0;
  std::size_t max_radius = 0;  // max carving radius (locality proxy)
};

/// Ball-growing decomposition; processes candidate centers in ascending id
/// order (the construction is correct for any order).
NetworkDecomposition ball_growing_decomposition(const Graph& g);

/// Verify the decomposition invariants:
///  - every vertex belongs to exactly one cluster, ids dense;
///  - weak diameter (in G) of every cluster <= max_weak_diameter;
///  - no G-edge joins two distinct clusters of the same color;
///  - color_count <= max_colors.
bool verify_decomposition(const Graph& g, const NetworkDecomposition& nd,
                          std::size_t max_weak_diameter,
                          std::size_t max_colors);

/// The theory bounds for an n-vertex graph: D = 2*ceil(log2 n),
/// C = ceil(log2 n) + 1 (n >= 1).
std::size_t decomposition_diameter_bound(std::size_t n);
std::size_t decomposition_color_bound(std::size_t n);

}  // namespace pslocal
