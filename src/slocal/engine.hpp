// The SLOCAL model of Ghaffari, Kuhn and Maus [GKM17], as summarized in
// the paper's introduction:
//
//   "In an SLOCAL algorithm with complexity (or locality) r the nodes of
//    the network graph are processed in an arbitrary order.  When a node v
//    is processed it can see the current state of all nodes in its r-hop
//    neighborhood (including all topological information of this
//    neighborhood) and its output can be an arbitrary function of this
//    neighborhood.  Additionally, it can store information that can be
//    read by later nodes as part of v's state."
//
// The engine executes node-processing callbacks sequentially in a caller-
// chosen order and *measures* the locality actually used: every ball
// query, state read and state write is charged at its hop distance from
// the processed node.  The maximum charge over all nodes is the
// algorithm's locality — the model's only resource.
//
// State writes to *other* nodes (View::write_state) are syntactic sugar
// for the standard transformation in which v records the instruction in
// its own state and the affected node (or any node that later looks) reads
// it from within its ball; the hop distance of the write is charged to v's
// locality, so the accounting is equivalent to the by-the-book model.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace pslocal {

template <typename State>
class SLocalView;

namespace detail {
/// Engine instrumentation, shared by all State instantiations.  The
/// locality histogram is the first-class per-node record the benches
/// read from obs snapshots (previously derived ad hoc from
/// SLocalRun::locality_of).
struct SLocalMetrics {
  obs::Counter runs{"slocal.runs"};
  obs::Counter nodes{"slocal.nodes"};
  obs::Counter ball_queries{"slocal.ball_queries"};
  obs::Counter state_reads{"slocal.state_reads"};
  obs::Counter state_writes{"slocal.state_writes"};
  obs::Histogram locality{"slocal.locality"};
  obs::Histogram ball_radius{"slocal.ball_radius"};
  static const SLocalMetrics& get() {
    static SLocalMetrics m;
    return m;
  }
};
}  // namespace detail

/// Result of one SLOCAL execution.
template <typename State>
struct SLocalRun {
  std::vector<State> states;              // final states (the outputs)
  std::size_t max_locality = 0;           // the algorithm's measured locality
  std::vector<std::size_t> locality_of;   // per processed node
};

/// Execute `process(view)` once per vertex, in `order`.
/// State must be default-constructible or provided via `initial`.
template <typename State, typename Process>
SLocalRun<State> run_slocal(const Graph& g, std::vector<State> initial,
                            const std::vector<VertexId>& order,
                            Process&& process) {
  PSL_EXPECTS(initial.size() == g.vertex_count());
  PSL_EXPECTS(is_vertex_permutation(g, order));
  PSL_OBS_SPAN("slocal.run");
  const auto& obs_metrics = detail::SLocalMetrics::get();
  obs_metrics.runs.add(1);
  SLocalRun<State> run;
  run.states = std::move(initial);
  run.locality_of.assign(g.vertex_count(), 0);
  for (VertexId v : order) {
    SLocalView<State> view(g, run.states, v);
    process(view);
    run.locality_of[v] = view.locality_used();
    obs_metrics.locality.record(view.locality_used());
    run.max_locality = std::max(run.max_locality, view.locality_used());
  }
  obs_metrics.nodes.add(order.size());
  return run;
}

/// The r-hop window a node sees while being processed.
template <typename State>
class SLocalView {
 public:
  SLocalView(const Graph& g, std::vector<State>& states, VertexId center)
      : g_(g), states_(states), center_(center),
        dist_(g.vertex_count(), kUnreachable) {
    dist_[center_] = 0;
    frontier_.push_back(center_);
    visit_order_.push_back(center_);
    explored_radius_ = 0;
  }

  [[nodiscard]] VertexId center() const { return center_; }
  [[nodiscard]] std::size_t locality_used() const { return locality_; }

  /// Own state: reading/writing the processed node itself is free.
  [[nodiscard]] State& own_state() { return states_[center_]; }

  /// Vertices at hop distance <= r, BFS order (center first).
  /// Charges locality r.
  [[nodiscard]] std::vector<VertexId> ball_vertices(std::size_t r) {
    const auto& m = detail::SLocalMetrics::get();
    m.ball_queries.add(1);
    m.ball_radius.record(r);
    charge(r);
    explore_to(r);
    std::vector<VertexId> out;
    for (VertexId v : visit_order_)
      if (dist_[v] <= r) out.push_back(v);
    return out;
  }

  /// Direct neighbors of the center (locality 1).
  [[nodiscard]] std::vector<VertexId> neighbors() {
    const auto& m = detail::SLocalMetrics::get();
    m.ball_queries.add(1);
    m.ball_radius.record(1);
    charge(1);
    return {g_.neighbors(center_).begin(), g_.neighbors(center_).end()};
  }

  /// Topology of the ball: induced subgraph + id maps (locality r).
  [[nodiscard]] InducedSubgraph ball_subgraph(std::size_t r) {
    return induced_subgraph(g_, ball_vertices(r));
  }

  /// State of node u; charges u's hop distance from the center.
  [[nodiscard]] const State& state(VertexId u) {
    detail::SLocalMetrics::get().state_reads.add(1);
    charge(distance_to(u));
    return states_[u];
  }

  /// Write u's state; charges the hop distance (see file comment).
  void write_state(VertexId u, State s) {
    detail::SLocalMetrics::get().state_writes.add(1);
    charge(distance_to(u));
    states_[u] = std::move(s);
  }

  /// Hop distance from the center to u (must be reachable; the engine
  /// explores lazily as far as needed).  Does not itself charge locality.
  [[nodiscard]] std::size_t distance_to(VertexId u) {
    PSL_EXPECTS(u < g_.vertex_count());
    while (dist_[u] == kUnreachable && !frontier_.empty())
      explore_to(explored_radius_ + 1);
    PSL_CHECK_MSG(dist_[u] != kUnreachable,
                  "node " << u << " unreachable from " << center_);
    return dist_[u];
  }

 private:
  void charge(std::size_t r) { locality_ = std::max(locality_, r); }

  void explore_to(std::size_t r) {
    while (explored_radius_ < r && !frontier_.empty()) {
      std::vector<VertexId> next;
      for (VertexId v : frontier_) {
        for (VertexId w : g_.neighbors(v)) {
          if (dist_[w] == kUnreachable) {
            dist_[w] = dist_[v] + 1;
            visit_order_.push_back(w);
            next.push_back(w);
          }
        }
      }
      frontier_.assign(next.begin(), next.end());
      ++explored_radius_;
    }
    if (explored_radius_ < r) explored_radius_ = r;  // graph exhausted
  }

  const Graph& g_;
  std::vector<State>& states_;
  VertexId center_;
  std::vector<std::size_t> dist_;
  std::deque<VertexId> frontier_;
  std::vector<VertexId> visit_order_;
  std::size_t explored_radius_ = 0;
  std::size_t locality_ = 0;
};

}  // namespace pslocal
