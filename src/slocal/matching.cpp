#include "slocal/matching.hpp"

#include <algorithm>

#include "slocal/engine.hpp"
#include "util/check.hpp"

namespace pslocal {

bool is_matching(const Graph& g, const Matching& m) {
  std::vector<bool> used(g.vertex_count(), false);
  for (auto [u, v] : m) {
    if (u >= g.vertex_count() || v >= g.vertex_count()) return false;
    if (!g.has_edge(u, v)) return false;
    if (used[u] || used[v]) return false;
    used[u] = used[v] = true;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const Matching& m) {
  if (!is_matching(g, m)) return false;
  std::vector<bool> used(g.vertex_count(), false);
  for (auto [u, v] : m) used[u] = used[v] = true;
  for (auto [u, v] : g.edges())
    if (!used[u] && !used[v]) return false;
  return true;
}

namespace {
constexpr VertexId kUnmatched = static_cast<VertexId>(-1);
}

SLocalMatchingResult slocal_greedy_matching(
    const Graph& g, const std::vector<VertexId>& order) {
  auto run = run_slocal<VertexId>(
      g, std::vector<VertexId>(g.vertex_count(), kUnmatched), order,
      [](SLocalView<VertexId>& view) {
        if (view.own_state() != kUnmatched) return;  // already grabbed
        for (VertexId w : view.neighbors()) {        // sorted ascending
          if (view.state(w) == kUnmatched) {
            view.own_state() = w;
            view.write_state(w, view.center());  // distance 1
            return;
          }
        }
      });

  SLocalMatchingResult res;
  res.locality = run.max_locality;
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (run.states[v] != kUnmatched && v < run.states[v])
      res.matching.emplace_back(v, run.states[v]);
  PSL_ENSURES(is_maximal_matching(g, res.matching));
  return res;
}

namespace {

std::size_t max_matching_rec(const Graph& g, std::vector<bool>& used,
                             VertexId from) {
  // Find the first vertex with an available edge; branch over matching it
  // to each available neighbor or leaving it unmatched.
  VertexId u = from;
  while (u < g.vertex_count()) {
    if (!used[u]) {
      const auto nb = g.neighbors(u);
      if (std::any_of(nb.begin(), nb.end(),
                      [&](VertexId w) { return !used[w]; }))
        break;
    }
    ++u;
  }
  if (u >= g.vertex_count()) return 0;

  std::size_t best = max_matching_rec(g, used, u + 1);  // skip u
  used[u] = true;
  for (VertexId w : g.neighbors(u)) {
    if (used[w]) continue;
    used[w] = true;
    best = std::max(best, 1 + max_matching_rec(g, used, u + 1));
    used[w] = false;
  }
  used[u] = false;
  return best;
}

}  // namespace

std::size_t maximum_matching_size(const Graph& g) {
  std::vector<bool> used(g.vertex_count(), false);
  return max_matching_rec(g, used, 0);
}

}  // namespace pslocal
