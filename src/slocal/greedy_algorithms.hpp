// Locality-1 SLOCAL algorithms from the paper's introduction:
//
//   "The maximal independent set problem admits an SLOCAL algorithm with
//    locality r = 1 by iterating through the nodes in an arbitrary order
//    and joining the independent set if none of the already processed
//    neighbors is already contained in the set."
//
// The same order-greedy scheme gives (Δ+1)-vertex coloring with
// locality 1.  Both run on the measuring engine, so tests can assert the
// claimed locality exactly.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "slocal/engine.hpp"

namespace pslocal {

struct SLocalMisResult {
  std::vector<VertexId> independent_set;
  std::size_t locality = 0;
};

/// Greedy MIS processed in `order`; locality is measured (always 1 on
/// graphs with at least one edge).
SLocalMisResult slocal_greedy_mis(const Graph& g,
                                  const std::vector<VertexId>& order);

struct SLocalColoringResult {
  std::vector<std::size_t> coloring;  // 0-based proper coloring
  std::size_t colors_used = 0;
  std::size_t locality = 0;
};

/// Greedy (Δ+1)-coloring processed in `order` (first-free color).
SLocalColoringResult slocal_greedy_coloring(const Graph& g,
                                            const std::vector<VertexId>& order);

}  // namespace pslocal
