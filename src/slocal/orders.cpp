#include "slocal/orders.hpp"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace pslocal {

const std::vector<OrderStrategy>& all_order_strategies() {
  static const std::vector<OrderStrategy> all = {
      OrderStrategy::kIdentity,        OrderStrategy::kReverse,
      OrderStrategy::kRandom,          OrderStrategy::kDegreeAscending,
      OrderStrategy::kDegreeDescending, OrderStrategy::kBfs,
      OrderStrategy::kDegeneracy,
  };
  return all;
}

std::string to_string(OrderStrategy strategy) {
  switch (strategy) {
    case OrderStrategy::kIdentity:
      return "identity";
    case OrderStrategy::kReverse:
      return "reverse";
    case OrderStrategy::kRandom:
      return "random";
    case OrderStrategy::kDegreeAscending:
      return "degree-asc";
    case OrderStrategy::kDegreeDescending:
      return "degree-desc";
    case OrderStrategy::kBfs:
      return "bfs";
    case OrderStrategy::kDegeneracy:
      return "degeneracy";
  }
  return "unknown";
}

std::vector<VertexId> make_order(const Graph& g, OrderStrategy strategy,
                                 std::uint64_t seed) {
  const std::size_t n = g.vertex_count();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  switch (strategy) {
    case OrderStrategy::kIdentity:
      break;
    case OrderStrategy::kReverse:
      std::reverse(order.begin(), order.end());
      break;
    case OrderStrategy::kRandom: {
      Rng rng(seed);
      rng.shuffle(order);
      break;
    }
    case OrderStrategy::kDegreeAscending:
      std::stable_sort(order.begin(), order.end(),
                       [&](VertexId a, VertexId b) {
                         return g.degree(a) < g.degree(b);
                       });
      break;
    case OrderStrategy::kDegreeDescending:
      std::stable_sort(order.begin(), order.end(),
                       [&](VertexId a, VertexId b) {
                         return g.degree(a) > g.degree(b);
                       });
      break;
    case OrderStrategy::kBfs: {
      order.clear();
      std::vector<bool> seen(n, false);
      for (VertexId s = 0; s < n; ++s) {
        if (seen[s]) continue;
        for (VertexId v : ball(g, s, n)) {  // BFS order of the component
          if (!seen[v]) {
            seen[v] = true;
            order.push_back(v);
          }
        }
      }
      break;
    }
    case OrderStrategy::kDegeneracy:
      order = degeneracy_order(g).order;
      break;
  }
  PSL_ENSURES(is_vertex_permutation(g, order));
  return order;
}

}  // namespace pslocal
