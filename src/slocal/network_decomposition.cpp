#include "slocal/network_decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace pslocal {

namespace {

/// BFS in G[alive] from `center`, listing vertices by distance layer.
/// Returns vertices with dist <= r_max, layer by layer.
std::vector<std::vector<VertexId>> layered_ball(const Graph& g,
                                                const std::vector<bool>& alive,
                                                VertexId center,
                                                std::size_t r_max) {
  std::vector<std::size_t> dist(g.vertex_count(), kUnreachable);
  std::vector<std::vector<VertexId>> layers{{center}};
  dist[center] = 0;
  std::size_t r = 0;
  while (r < r_max && !layers[r].empty()) {
    std::vector<VertexId> next;
    for (VertexId v : layers[r]) {
      for (VertexId w : g.neighbors(v)) {
        if (alive[w] && dist[w] == kUnreachable) {
          dist[w] = r + 1;
          next.push_back(w);
        }
      }
    }
    layers.push_back(std::move(next));
    ++r;
  }
  return layers;
}

}  // namespace

NetworkDecomposition ball_growing_decomposition(const Graph& g) {
  const std::size_t n = g.vertex_count();
  NetworkDecomposition nd;
  nd.cluster_of.assign(n, kUnreachable);

  std::vector<bool> in_u(n, true);  // still unclustered
  std::size_t remaining = n;
  std::size_t color = 0;
  while (remaining > 0) {
    std::vector<bool> blocked(n, false);  // ring-blocked for this class
    for (VertexId v = 0; v < n; ++v) {
      if (!in_u[v] || blocked[v]) continue;
      // Grow a ball in G[U \ blocked] until the next layer stops doubling.
      // (Blocked ring vertices are excluded so same-class clusters stay
      // separated by at least one U-vertex outside any same-class cluster.)
      std::vector<bool> alive(n, false);
      for (VertexId u = 0; u < n; ++u) alive[u] = in_u[u] && !blocked[u];
      const auto layers = layered_ball(g, alive, v, n);
      std::size_t size_r = 1;  // |B(0)|
      std::size_t r = 0;
      while (r + 1 < layers.size()) {
        const std::size_t size_next = size_r + layers[r + 1].size();
        if (size_next > 2 * size_r) {
          size_r = size_next;
          ++r;
        } else {
          break;
        }
      }
      // Cluster = B(r); ring = layer r+1 (blocked for this class).
      const std::size_t cluster_id = nd.cluster_count++;
      nd.color_of_cluster.push_back(color);
      for (std::size_t d = 0; d <= r; ++d) {
        for (VertexId u : layers[d]) {
          nd.cluster_of[u] = cluster_id;
          in_u[u] = false;
          --remaining;
        }
      }
      if (r + 1 < layers.size())
        for (VertexId u : layers[r + 1]) blocked[u] = true;
      nd.max_radius = std::max(nd.max_radius, r);
    }
    ++color;
    PSL_CHECK_MSG(color <= g.vertex_count() + 1,
                  "decomposition failed to terminate");
  }
  nd.color_count = color;
  return nd;
}

bool verify_decomposition(const Graph& g, const NetworkDecomposition& nd,
                          std::size_t max_weak_diameter,
                          std::size_t max_colors) {
  const std::size_t n = g.vertex_count();
  if (nd.cluster_of.size() != n) return false;
  if (nd.color_of_cluster.size() != nd.cluster_count) return false;
  if (nd.color_count > max_colors) return false;

  std::vector<std::vector<VertexId>> members(nd.cluster_count);
  for (VertexId v = 0; v < n; ++v) {
    if (nd.cluster_of[v] >= nd.cluster_count) return false;
    members[nd.cluster_of[v]].push_back(v);
  }
  for (const auto& m : members)
    if (m.empty()) return false;  // ids must be dense

  // Weak diameter: max over cluster members of G-distance.
  for (const auto& m : members) {
    const auto dist = bfs_distances(g, m.front());
    for (VertexId v : m) {
      if (dist[v] == kUnreachable) return false;
      // Weak diameter via pairwise check from every member (clusters are
      // small; quadratic is fine at experiment sizes).
    }
    for (VertexId src : m) {
      const auto d2 = bfs_distances(g, src);
      for (VertexId v : m)
        if (d2[v] == kUnreachable || d2[v] > max_weak_diameter) return false;
    }
  }

  // Same-color clusters must not be adjacent.
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : g.neighbors(v)) {
      const auto cv = nd.cluster_of[v];
      const auto cw = nd.cluster_of[w];
      if (cv != cw && nd.color_of_cluster[cv] == nd.color_of_cluster[cw])
        return false;
    }
  }
  return true;
}

std::size_t decomposition_diameter_bound(std::size_t n) {
  if (n <= 1) return 0;
  return 2 * static_cast<std::size_t>(std::ceil(std::log2(n)));
}

std::size_t decomposition_color_bound(std::size_t n) {
  if (n <= 1) return 1;
  return static_cast<std::size_t>(std::ceil(std::log2(n))) + 1;
}

}  // namespace pslocal
