// (α, β)-ruling sets — the classic relaxation of MIS used throughout the
// network-decomposition literature ([AGLP89], the paper's reference for
// slow deterministic algorithms, builds on ruling-set machinery).
//
// A set S ⊆ V is an (α, β)-ruling set if
//   * any two distinct members of S are at distance >= α in G, and
//   * every vertex of V is within distance <= β of some member.
// An MIS is exactly a (2, 1)-ruling set.
//
// The greedy SLOCAL algorithm with locality β = α - 1 processes nodes in
// any order: a node joins S iff no earlier member lies within distance
// α - 1.  The engine measures that locality exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

struct RulingSetResult {
  std::vector<VertexId> ruling_set;
  std::size_t locality = 0;  // measured (= alpha - 1 on non-trivial graphs)
};

/// Greedy SLOCAL (α, α-1)-ruling set along `order` (alpha >= 1).
RulingSetResult slocal_ruling_set(const Graph& g, std::size_t alpha,
                                  const std::vector<VertexId>& order);

/// Verify the two ruling-set conditions.
bool is_ruling_set(const Graph& g, const std::vector<VertexId>& set,
                   std::size_t alpha, std::size_t beta);

}  // namespace pslocal
