#include "slocal/ball_carving.hpp"

#include <numeric>

#include "graph/algorithms.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/greedy_maxis.hpp"
#include "mis/independent_set.hpp"
#include "slocal/engine.hpp"

namespace pslocal {

namespace {

enum class CarveMark : std::uint8_t { kActive, kInIS, kRemoved };

/// Exact independence number / max IS of the active part of `vertices`.
struct ActiveBallIS {
  std::vector<VertexId> set;  // original ids
  std::size_t alpha = 0;
};

ActiveBallIS active_maxis(const Graph& g,
                          const std::vector<VertexId>& active_subset,
                          std::uint64_t budget, BallCarvingInner inner) {
  const auto sub = induced_subgraph(g, active_subset);
  std::vector<VertexId> local_set;
  if (inner == BallCarvingInner::kExact) {
    auto res = ExactMaxIS(budget).solve(sub.graph);
    PSL_CHECK_MSG(res.proven_optimal,
                  "ball-carving inner solver out of budget");
    local_set = std::move(res.set);
  } else {
    local_set = greedy_min_degree_maxis(sub.graph);
  }
  ActiveBallIS out;
  out.alpha = local_set.size();
  out.set.reserve(local_set.size());
  for (VertexId lv : local_set) out.set.push_back(sub.to_original[lv]);
  return out;
}

}  // namespace

BallCarvingResult ball_carving_maxis(const Graph& g,
                                     const std::vector<VertexId>& order,
                                     std::uint64_t node_budget,
                                     BallCarvingInner inner) {
  BallCarvingResult result;
  auto run = run_slocal<CarveMark>(
      g, std::vector<CarveMark>(g.vertex_count(), CarveMark::kActive), order,
      [&](SLocalView<CarveMark>& view) {
        if (view.own_state() != CarveMark::kActive) return;

        // Active vertices of B(center, r), for growing r.
        auto active_in_ball = [&](std::size_t r) {
          std::vector<VertexId> act;
          for (VertexId u : view.ball_vertices(r))
            if (view.state(u) == CarveMark::kActive) act.push_back(u);
          return act;
        };

        std::size_t r = 0;
        auto act_r = active_in_ball(0);
        ActiveBallIS inner_is = active_maxis(g, act_r, node_budget, inner);
        while (true) {
          auto act_next = active_in_ball(r + 1);
          ActiveBallIS next = active_maxis(g, act_next, node_budget, inner);
          if (next.alpha <= 2 * inner_is.alpha) {
            // Carve: IS from B(r), deactivate all active of B(r+1).
            for (VertexId u : act_next)
              view.write_state(u, CarveMark::kRemoved);
            for (VertexId u : inner_is.set)
              view.write_state(u, CarveMark::kInIS);
            result.max_radius = std::max(result.max_radius, r);
            ++result.carve_count;
            break;
          }
          ++r;
          act_r = std::move(act_next);
          inner_is = std::move(next);
          PSL_CHECK_MSG(r <= g.vertex_count(),
                        "ball carving failed to terminate");
        }
      });

  result.locality = run.max_locality;
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (run.states[v] == CarveMark::kInIS)
      result.independent_set.push_back(v);
  PSL_ENSURES(is_independent_set(g, result.independent_set));
  return result;
}

std::vector<VertexId> BallCarvingOracle::solve(const Graph& g) {
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), VertexId{0});
  return ball_carving_maxis(g, order, node_budget_, inner_).independent_set;
}

}  // namespace pslocal
