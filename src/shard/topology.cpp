#include "shard/topology.hpp"

#include <sstream>

#include "util/check.hpp"

namespace pslocal::shard {

void validate_topology(const Topology& topology) {
  PSL_CHECK_MSG(!topology.shards.empty(),
                "shard: topology needs at least one shard");
  PSL_CHECK_MSG(topology.vnodes >= 1, "shard: topology needs vnodes >= 1");
  PSL_CHECK_MSG(topology.replication >= 1 &&
                    topology.replication <= topology.shards.size(),
                "shard: replication " << topology.replication
                                      << " out of range for "
                                      << topology.shards.size() << " shards");
  for (const Endpoint& e : topology.shards) {
    PSL_CHECK_MSG(!e.host.empty() && e.port != 0,
                  "shard: endpoint '" << e.host << ":" << e.port
                                      << "' is not addressable");
  }
}

std::string format_endpoint(const Endpoint& endpoint) {
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

Endpoint parse_endpoint(const std::string& spec) {
  const auto colon = spec.rfind(':');
  PSL_CHECK_MSG(colon != std::string::npos && colon > 0 &&
                    colon + 1 < spec.size(),
                "shard: endpoint expects host:port, got \"" << spec << "\"");
  Endpoint e;
  e.host = spec.substr(0, colon);
  int port = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    PSL_CHECK_MSG(c >= '0' && c <= '9',
                  "shard: bad port in endpoint \"" << spec << "\"");
    port = port * 10 + (c - '0');
    PSL_CHECK_MSG(port <= 65535,
                  "shard: port out of range in endpoint \"" << spec << "\"");
  }
  PSL_CHECK_MSG(port > 0, "shard: port out of range in endpoint \"" << spec
                                                                    << "\"");
  e.port = static_cast<std::uint16_t>(port);
  return e;
}

Topology parse_topology(const std::string& spec) {
  Topology t;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    if (!item.empty()) t.shards.push_back(parse_endpoint(item));
    begin = end + 1;
    if (end == spec.size()) break;
  }
  PSL_CHECK_MSG(!t.shards.empty(),
                "shard: no endpoints in topology \"" << spec << "\"");
  return t;
}

std::string topology_json(const Topology& topology) {
  std::ostringstream os;
  os << "{\"shards\":[";
  for (std::size_t i = 0; i < topology.shards.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << format_endpoint(topology.shards[i]) << "\"";
  }
  os << "],\"ring_seed\":" << topology.ring_seed
     << ",\"vnodes\":" << topology.vnodes
     << ",\"replication\":" << topology.replication << "}";
  return os.str();
}

}  // namespace pslocal::shard
