// Seeded consistent-hash ring with virtual nodes (docs/shard.md).
//
// The ring maps 64-bit content-addressed cache keys (util/hash.hpp) to
// shard indices.  Each shard contributes `vnodes` points; a key is owned
// by the shard whose point is the first at or clockwise-after the key's
// own position.  Virtual nodes smooth the arc lengths so expected load
// per shard is uniform to within a few percent at the default density.
//
// Determinism pins (tested in tests/test_shard_ring.cpp and the qc
// `shard_ring` property):
//
//  * point(seed, shard, vnode) is a pure function — no RNG state, no
//    global salt — so every router built from the same (seed, topology)
//    agrees on placement byte-for-byte.
//  * Points pass through mix64 twice: FNV-derived keys and small
//    (shard, vnode) integers both have correlated low entropy, and the
//    finalizer's avalanche is what makes arc lengths i.i.d.-looking.
//  * Removing the highest-indexed shard removes exactly its points and
//    no others (ring(N-1)'s point set is a subset of ring(N)'s), so a
//    scale-down only moves the keys the lost shard owned.  The same
//    holds in reverse for scale-up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pslocal::shard {

struct RingConfig {
  std::uint64_t seed = 1;    // placement salt; part of the topology pin
  std::size_t vnodes = 64;   // points per shard
};

class HashRing {
 public:
  /// Builds the sorted point list for `shards` shards.  Requires
  /// shards >= 1 and vnodes >= 1.
  explicit HashRing(std::size_t shards, RingConfig config = {});

  /// The ring position of one virtual node — a pure function of its
  /// arguments:  mix64(mix64(seed + gamma*(shard+1)) + vnode + 1).
  [[nodiscard]] static std::uint64_t point(std::uint64_t seed,
                                           std::size_t shard,
                                           std::size_t vnode);

  /// The shard owning `key` (keys are mixed before lookup, so raw FNV
  /// digests and sequential integers are both fine inputs).
  [[nodiscard]] std::size_t owner(std::uint64_t key) const;

  /// The first `count` *distinct* shards clockwise from `key`'s
  /// position, starting with owner(key).  This is the replica preference
  /// order: fan-out uses a prefix of it, failover walks the rest.
  /// Returns all shards (in ring order) when count >= shards().
  [[nodiscard]] std::vector<std::size_t> replicas(std::uint64_t key,
                                                  std::size_t count) const;

  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] const RingConfig& config() const { return config_; }

  /// Sorted (position, shard) points — exposed for tests and the router
  /// self-test's subset/balance checks.
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::uint32_t>>&
  points() const {
    return points_;
  }

 private:
  std::size_t shards_;
  RingConfig config_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace pslocal::shard
