// src/shard/ — consistent-hash sharding over the net tier (docs/shard.md).
//
// The paper's P-SLOCAL framing decomposes a global computation into
// independently-answerable local queries; this tier exploits exactly
// that: every request is content-addressed (service/request.hpp), every
// response is byte-deterministic, so *any* replica of the owning shard
// serves the identical bytes and placement is free to be pure policy.
//
//   ring.hpp          seeded consistent-hash ring with virtual nodes
//   topology.hpp      the placement contract (endpoints + pins)
//   router.hpp        request -> replica preference order (pure)
//   shard_client.hpp  fan-out, duplicate suppression, typed failover
//   cluster.hpp       N-shard in-process cluster for tests and benches
//
// Determinism contract: ring placement is a pure function of
// (seed, key, topology), and replay files are cmp-identical across
// 1/2/4-shard topologies and replication factors — where a request was
// served never leaks into the bytes that come back.
#pragma once

#include "shard/cluster.hpp"        // IWYU pragma: export
#include "shard/ring.hpp"           // IWYU pragma: export
#include "shard/router.hpp"         // IWYU pragma: export
#include "shard/shard_client.hpp"   // IWYU pragma: export
#include "shard/topology.hpp"       // IWYU pragma: export
