#include "shard/shard_client.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/obs.hpp"
#include "service/stages.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pslocal::shard {

namespace {

const obs::Counter g_calls("shard.calls");
const obs::Counter g_fanout("shard.fanout_sends");
const obs::Counter g_dups("shard.duplicates_suppressed");
const obs::Counter g_reroutes("shard.reroutes_queue_full");
const obs::Counter g_failovers("shard.failovers");

int remaining_ms(std::uint64_t deadline_ns) {
  const std::uint64_t now = now_ns();
  if (now >= deadline_ns) return 0;
  const std::uint64_t ms = (deadline_ns - now) / 1000000;
  return ms > 60'000'000 ? 60'000'000 : static_cast<int>(ms) + 1;
}

}  // namespace

ShardClient::ShardClient(ShardClientConfig config)
    : config_(std::move(config)), router_(config_.topology) {
  replication_ = config_.replication != 0 ? config_.replication
                                          : config_.topology.replication;
  PSL_CHECK_MSG(replication_ >= 1 && replication_ <= router_.shards(),
                "shard: replication " << replication_ << " out of range for "
                                      << router_.shards() << " shards");
  shards_.resize(router_.shards());
  routed_.assign(router_.shards(), 0);
  delays_us_ = net::Client::backoff_delays_us(config_.retry,
                                              config_.retry.max_attempts);
}

ShardClient::~ShardClient() = default;

bool ShardClient::ensure_up(std::size_t s) {
  Shard& shard = shards_[s];
  if (shard.up) return true;
  // A fresh client per (re)connect: close() keeps decoder bytes from the
  // old stream, a new object starts clean.
  net::Client::Config cc;
  cc.host = config_.topology.shards[s].host;
  cc.port = config_.topology.shards[s].port;
  cc.connect_timeout_ms = config_.connect_timeout_ms;
  cc.io_timeout_ms = config_.io_timeout_ms;
  if (shard.client != nullptr) stats_.reconnects++;
  shard.client = std::make_unique<net::Client>(cc);
  shard.pending.clear();
  try {
    shard.client->connect();
  } catch (const ContractViolation&) {
    shard.client.reset();
    return false;
  }
  shard.up = true;
  return true;
}

void ShardClient::mark_down(std::size_t s) {
  Shard& shard = shards_[s];
  shard.up = false;
  shard.pending.clear();  // the connection died; nothing left to absorb
  if (shard.client != nullptr) shard.client->close();
}

void ShardClient::absorb_pending(std::size_t s) {
  Shard& shard = shards_[s];
  if (!shard.up || shard.pending.empty()) return;
  auto it = shard.pending.begin();
  while (it != shard.pending.end()) {
    const net::Client::Result r = shard.client->try_wait(*it);
    if (r.outcome == net::Client::Outcome::kTimeout) {
      ++it;  // not here yet; a later pump will catch it
      continue;
    }
    if (r.outcome == net::Client::Outcome::kTransport) {
      mark_down(s);  // clears pending; the iterator is gone with it
      return;
    }
    stats_.duplicates_suppressed++;
    g_dups.add();
    it = shard.pending.erase(it);
  }
}

void ShardClient::connect() {
  std::size_t up = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (ensure_up(s)) up++;
  }
  PSL_CHECK_MSG(up > 0, "shard: no shard of "
                            << shards_.size() << " reachable ("
                            << topology_json(config_.topology) << ")");
}

net::Client::Result ShardClient::call(const service::Request& request) {
  stats_.calls++;
  g_calls.add();

  // Distributed trace context for this call: an explicit per-request
  // trace id wins, else the thread's ambient one, else a fresh root —
  // so every replica send below (fan-out, reroutes, failover retries)
  // carries the same trace_id and the responses echo it back.
  service::Request traced = request;
  const obs::TraceContext ambient = obs::current_trace_context();
  if (traced.trace_id == 0) {
    traced.trace_id =
        ambient.trace_id != 0 ? ambient.trace_id : obs::new_trace_id();
  }
  obs::ScopedTraceContext trace_ctx(
      traced.trace_id,
      traced.parent_span_id != 0 ? traced.parent_span_id : ambient.span_id);
  obs::ScopedSpan root_span("shard.call");
  // While a trace session is live the root span is now ambient, so the
  // server-side spans (net.dispatch / service.solve / ...) nest under
  // it; otherwise this keeps whatever parent the caller supplied.
  traced.parent_span_id = obs::current_trace_context().span_id;

  // Full ring preference order: the first `replication_` entries are the
  // fan-out set, the rest are failover spares.
  const std::vector<std::size_t> pref = router_.route(traced,
                                                      router_.shards());

  struct Outstanding {
    std::size_t shard;
    std::uint64_t id;
  };
  std::vector<Outstanding> sent;
  std::uint32_t attempts = 0;
  std::size_t next_pref = 0;
  net::Client::Result last;  // most recent NACK/transport verdict
  last.outcome = net::Client::Outcome::kTransport;
  last.error = "shard: no shard reachable";

  const auto send_next = [&]() -> bool {
    while (next_pref < pref.size()) {
      const std::size_t s = pref[next_pref++];
      if (!ensure_up(s)) continue;
      absorb_pending(s);
      try {
        // One child span per replica attempt — fan-out sends, reroutes
        // and failover retries each get their own "shard.attempt".
        obs::ScopedSpan attempt_span("shard.attempt");
        const std::uint64_t id = shards_[s].client->send(traced);
        sent.push_back({s, id});
        routed_[s]++;
        stats_.sends++;
        attempts++;
        if (attempts > 1) {
          stats_.fanout_sends++;
          g_fanout.add();
        }
        return true;
      } catch (const ContractViolation&) {
        mark_down(s);
        stats_.failovers++;
        g_failovers.add();
      }
    }
    return false;
  };

  const auto settle = [&](std::size_t winner_idx,
                          net::Client::Result r) -> net::Client::Result {
    // Losers' responses will still arrive; park their ids for later
    // absorption so they are suppressed, not leaked.
    for (std::size_t j = 0; j < sent.size(); ++j) {
      if (j == winner_idx) continue;
      shards_[sent[j].shard].pending.push_back(sent[j].id);
    }
    r.attempts = attempts;
    if (r.trace_id == 0) r.trace_id = traced.trace_id;
    if (r.rtt_ns != 0) {
      service::stages::record(service::stages::Stage::kRtt, traced.kind,
                              r.rtt_ns, traced.trace_id);
    }
    return r;
  };

  for (std::size_t i = 0; i < replication_; ++i) send_next();
  if (sent.empty()) return settle(sent.size(), last);

  const std::uint64_t deadline =
      now_ns() +
      static_cast<std::uint64_t>(config_.io_timeout_ms) * 1000000ULL;
  std::size_t backoff_round = 0;
  std::uint64_t shed_hint_us = 0;  // largest kShedRetryAfter hint seen

  for (;;) {
    std::vector<pollfd> pfds;
    pfds.reserve(sent.size());
    for (const Outstanding& o : sent) {
      pfds.push_back({shards_[o.shard].client->native_handle(), POLLIN, 0});
    }
    const int wait_ms = remaining_ms(deadline);
    const int ready = ::poll(pfds.data(), pfds.size(), wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      last.outcome = net::Client::Outcome::kTransport;
      last.error = "shard: poll failed";
      return settle(sent.size(), last);
    }
    if (ready == 0 && remaining_ms(deadline) == 0) {
      // Give up on this call; the outstanding responses become pending
      // duplicates (they are still owed by live shards).
      net::Client::Result r;
      r.outcome = net::Client::Outcome::kTimeout;
      return settle(sent.size(), r);
    }

    // Visit every readable replica; the first settled frame wins.
    // Replacement sends for dropped replicas are deferred past the loop
    // so `sent` and `pfds` stay index-aligned while visiting.
    std::size_t replacements = 0;
    for (std::size_t j = 0; j < sent.size();) {
      const short revents = pfds[j].revents;
      if (revents == 0) {
        ++j;
        continue;
      }
      const std::size_t s = sent[j].shard;
      const net::Client::Result r = shards_[s].client->try_wait(sent[j].id);
      switch (r.outcome) {
        case net::Client::Outcome::kTimeout:
          ++j;  // bytes arrived but not our frame yet
          break;
        case net::Client::Outcome::kOk:
        case net::Client::Outcome::kRejected:
        case net::Client::Outcome::kError:
          return settle(j, r);
        case net::Client::Outcome::kNack:
          last = r;
          if (r.nack_code == net::wire::NackCode::kQueueFull) {
            stats_.reroutes_queue_full++;
            g_reroutes.add();
          } else if (r.nack_code == net::wire::NackCode::kShedRetryAfter) {
            // A shed shard is healthy — it chose not to serve this
            // tenant right now.  Reroute without marking it down, and
            // remember the hint for the backoff sleep below.
            stats_.reroutes_shed++;
            g_reroutes.add();
            shed_hint_us = std::max(shed_hint_us, r.retry_after_us);
          } else {
            // Shutdown NACK: this shard will not serve again; stop
            // offering it traffic.
            mark_down(s);
            stats_.failovers++;
            g_failovers.add();
          }
          sent.erase(sent.begin() + static_cast<std::ptrdiff_t>(j));
          pfds.erase(pfds.begin() + static_cast<std::ptrdiff_t>(j));
          replacements++;
          break;
        case net::Client::Outcome::kTransport:
          last = r;
          mark_down(s);
          stats_.failovers++;
          g_failovers.add();
          sent.erase(sent.begin() + static_cast<std::ptrdiff_t>(j));
          pfds.erase(pfds.begin() + static_cast<std::ptrdiff_t>(j));
          replacements++;
          break;
      }
    }
    for (std::size_t j = 0; j < replacements; ++j) {
      if (attempts < config_.retry.max_attempts) send_next();
    }

    if (sent.empty()) {
      // Every candidate NACKed or died.  Back off (seeded schedule) and
      // re-fan-out from the preferred replicas, until the send budget
      // runs dry or the deadline passes.
      if (attempts >= config_.retry.max_attempts ||
          remaining_ms(deadline) == 0) {
        return settle(sent.size(), last);
      }
      const std::size_t r = std::min(backoff_round, delays_us_.size() - 1);
      // Fold in the largest shed hint seen this round: the server told
      // us when capacity exists, so sleeping less only re-buys the NACK.
      std::this_thread::sleep_for(
          std::chrono::microseconds(std::max(delays_us_[r], shed_hint_us)));
      shed_hint_us = 0;
      backoff_round++;
      next_pref = 0;
      for (std::size_t i = 0; i < replication_ && sent.size() < replication_;
           ++i) {
        send_next();
      }
      if (sent.empty()) return settle(sent.size(), last);
    }
  }
}

void ShardClient::drain(int timeout_ms) {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    if (!shard.up) continue;
    while (!shard.pending.empty()) {
      const std::uint64_t id = shard.pending.back();
      shard.pending.pop_back();
      const net::Client::Result r = shard.client->wait(id, timeout_ms);
      if (r.outcome == net::Client::Outcome::kTransport) {
        mark_down(s);
        break;
      }
      if (r.outcome != net::Client::Outcome::kTimeout) {
        stats_.duplicates_suppressed++;
        g_dups.add();
      }
    }
  }
}

ShardClient::Stats ShardClient::stats() const {
  Stats s = stats_;
  s.pending_duplicates = 0;
  for (const Shard& shard : shards_) s.pending_duplicates += shard.pending.size();
  return s;
}

std::vector<std::uint64_t> ShardClient::routed_per_shard() const {
  return routed_;
}

bool ShardClient::shard_up(std::size_t shard) const {
  PSL_EXPECTS(shard < shards_.size());
  return shards_[shard].up;
}

}  // namespace pslocal::shard
