// Shard topology: the addressed shard set plus the placement pins.
//
// A Topology is everything two parties need to agree on placement: the
// ordered endpoint list (shard index = list position), the ring seed and
// vnode density, and the default replication factor.  Routers built from
// equal topologies route every key identically — the list order *is* the
// shard numbering, so reordering endpoints is a different topology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pslocal::shard {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct Topology {
  /// Shard i lives at shards[i]; order is part of the placement contract.
  std::vector<Endpoint> shards;
  std::uint64_t ring_seed = 1;
  std::size_t vnodes = 64;
  /// Default fan-out breadth for ShardClient (1 = no fan-out).
  std::size_t replication = 1;
};

/// PSL_CHECKs the invariants: at least one shard, every port nonzero,
/// 1 <= replication <= shards.size(), vnodes >= 1.
void validate_topology(const Topology& topology);

/// "host:port" (the format parse_endpoint accepts).
[[nodiscard]] std::string format_endpoint(const Endpoint& endpoint);

/// Inverse of format_endpoint; PSL_CHECKs the format and port range.
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

/// Comma-separated endpoint list -> topology with the given pins
/// ("127.0.0.1:9001,127.0.0.1:9002").  Ring seed / vnodes / replication
/// keep their defaults; callers override after parsing.
[[nodiscard]] Topology parse_topology(const std::string& spec);

/// Canonical single-line JSON of the full topology (stable key order),
/// so two processes can cmp their placement contracts byte-for-byte.
[[nodiscard]] std::string topology_json(const Topology& topology);

}  // namespace pslocal::shard
