#include "shard/router.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace pslocal::shard {

ShardRouter::ShardRouter(Topology topology)
    : topology_(std::move(topology)),
      ring_(topology_.shards.size(),
            RingConfig{topology_.ring_seed, topology_.vnodes}) {
  validate_topology(topology_);
}

std::uint64_t ShardRouter::key_of(const service::Request& request) const {
  if (request.instance_hash != 0) return service::cache_key(request);
  PSL_CHECK_MSG(request.instance != nullptr,
                "shard: request has neither instance nor instance_hash");
  service::Request keyed = request;  // shallow; the instance is shared
  keyed.instance_hash = hash_hypergraph(*request.instance);
  return service::cache_key(keyed);
}

std::size_t ShardRouter::owner(const service::Request& request) const {
  return ring_.owner(key_of(request));
}

std::vector<std::size_t> ShardRouter::route(const service::Request& request,
                                            std::size_t count) const {
  return ring_.replicas(key_of(request), count);
}

std::vector<std::size_t> ShardRouter::route_key(std::uint64_t key,
                                                std::size_t count) const {
  return ring_.replicas(key, count);
}

ShardRouter::SelfTest ShardRouter::self_test(std::size_t keys) const {
  SelfTest st;
  st.keys = keys;
  st.owned.assign(shards(), 0);

  // Synthetic key stream: a mixed counter, same recipe on every machine.
  const auto synthetic_key = [](std::size_t i) {
    return mix64(0xd1b54a32d192ed03ULL + static_cast<std::uint64_t>(i));
  };

  bool replicas_ok = true;
  for (std::size_t i = 0; i < keys; ++i) {
    const std::uint64_t key = synthetic_key(i);
    const std::size_t own = ring_.owner(key);
    st.owned[own]++;
    const auto reps = ring_.replicas(key, shards());
    if (reps.size() != shards() || reps.front() != own) replicas_ok = false;
    std::vector<bool> seen(shards(), false);
    for (const std::size_t s : reps) {
      if (s >= shards() || seen[s]) replicas_ok = false;
      if (s < shards()) seen[s] = true;
    }
  }

  const std::uint64_t peak = *std::max_element(st.owned.begin(),
                                               st.owned.end());
  const std::uint64_t low = *std::min_element(st.owned.begin(),
                                              st.owned.end());
  const double mean =
      static_cast<double>(keys) / static_cast<double>(shards());
  st.imbalance = static_cast<double>(peak) / mean;

  // Scale-down stability: rebuilding the ring without the last shard
  // must relocate only that shard's keys (ring.hpp's subset property).
  if (shards() > 1) {
    const HashRing smaller(shards() - 1, ring_.config());
    for (std::size_t i = 0; i < keys; ++i) {
      const std::uint64_t key = synthetic_key(i);
      const std::size_t own = ring_.owner(key);
      if (own != shards() - 1 && smaller.owner(key) != own) {
        st.foreign_moves++;
      }
    }
  }

  const bool covered = low > 0;
  const bool balanced = st.imbalance < 1.75;
  st.ok = covered && balanced && replicas_ok && st.foreign_moves == 0;

  std::ostringstream os;
  os << "self-test: " << keys << " keys over " << shards() << " shards, "
     << "ownership [" << low << ".." << peak << "], imbalance "
     << st.imbalance << (balanced ? " (< 1.75)" : " (FAIL: >= 1.75)")
     << (covered ? "" : ", FAIL: empty shard")
     << (replicas_ok ? "" : ", FAIL: bad replica list") << ", "
     << st.foreign_moves << " foreign moves on scale-down"
     << (st.foreign_moves == 0 ? "" : " (FAIL)") << " -> "
     << (st.ok ? "OK" : "FAIL");
  st.detail = os.str();
  return st;
}

}  // namespace pslocal::shard
