// ShardRouter — content-addressed request placement over a HashRing.
//
// The router is pure policy: given a Request it computes the request's
// cache key (service/request.hpp — the same key the engines' SolverCache
// uses) and asks the ring which shards should serve it.  It holds no
// sockets and no mutable state, so it can be shared freely and consulted
// from any thread.
//
// Placement is a pure function of (topology, key): two routers built
// from equal topologies return identical replica lists for every key, on
// every machine.  That — together with byte-deterministic response
// payloads — is why replay files are cmp-identical across shard counts:
// *where* a request is served never leaks into *what* bytes come back.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/request.hpp"
#include "shard/ring.hpp"
#include "shard/topology.hpp"

namespace pslocal::shard {

class ShardRouter {
 public:
  /// Validates and captures the topology, builds the ring.
  explicit ShardRouter(Topology topology);

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] std::size_t shards() const { return ring_.shards(); }

  /// The request's content-addressed cache key.  Hashes the instance on
  /// the spot when the caller left instance_hash 0 (traces precompute).
  [[nodiscard]] std::uint64_t key_of(const service::Request& request) const;

  /// Owner shard of the request's key.
  [[nodiscard]] std::size_t owner(const service::Request& request) const;

  /// Replica preference order for the request: `count` distinct shards,
  /// owner first (HashRing::replicas over key_of).
  [[nodiscard]] std::vector<std::size_t> route(const service::Request& request,
                                               std::size_t count) const;

  /// Same, for an already-computed key.
  [[nodiscard]] std::vector<std::size_t> route_key(std::uint64_t key,
                                                   std::size_t count) const;

  /// Deterministic placement health check over `keys` synthetic keys
  /// (run by `pslocal_shard --self-test` and the shard-smoke CI job).
  /// Verifies: every shard owns a nonzero slice; peak/mean ownership
  /// imbalance stays under 1.75 at the configured vnode density; replica
  /// lists are duplicate-free and owner-first; and removing the last
  /// shard relocates only the keys that shard owned (the ring's subset
  /// property).
  struct SelfTest {
    bool ok = false;
    std::size_t keys = 0;
    std::vector<std::uint64_t> owned;  // keys owned, by shard
    double imbalance = 0.0;            // max(owned) / mean(owned)
    std::size_t foreign_moves = 0;     // keys wrongly moved on scale-down
    std::string detail;                // human-readable verdict
  };
  [[nodiscard]] SelfTest self_test(std::size_t keys = 10000) const;

 private:
  Topology topology_;
  HashRing ring_;
};

}  // namespace pslocal::shard
