#include "shard/ring.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace pslocal::shard {

namespace {
// Weyl increment; also mix64's internal gamma.  Multiplying by
// (shard + 1) instead of xor-ing keeps distinct shards on distinct
// pre-mix values even when seed == 0.
constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
}  // namespace

HashRing::HashRing(std::size_t shards, RingConfig config)
    : shards_(shards), config_(config) {
  PSL_CHECK_MSG(shards >= 1, "shard: ring needs at least one shard");
  PSL_CHECK_MSG(config.vnodes >= 1, "shard: ring needs at least one vnode");
  points_.reserve(shards * config.vnodes);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t v = 0; v < config.vnodes; ++v) {
      points_.emplace_back(point(config.seed, s, v),
                           static_cast<std::uint32_t>(s));
    }
  }
  // Sorting pairs breaks position collisions by shard index — still a
  // pure function of (seed, topology).
  std::sort(points_.begin(), points_.end());
}

std::uint64_t HashRing::point(std::uint64_t seed, std::size_t shard,
                              std::size_t vnode) {
  const std::uint64_t shard_salt =
      mix64(seed + kGamma * (static_cast<std::uint64_t>(shard) + 1));
  return mix64(shard_salt + static_cast<std::uint64_t>(vnode) + 1);
}

std::size_t HashRing::owner(std::uint64_t key) const {
  const std::uint64_t pos = mix64(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), pos,
      [](const auto& pt, std::uint64_t p) { return pt.first < p; });
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->second;
}

std::vector<std::size_t> HashRing::replicas(std::uint64_t key,
                                            std::size_t count) const {
  count = std::min(count, shards_);
  std::vector<std::size_t> out;
  out.reserve(count);
  std::vector<bool> taken(shards_, false);
  const std::uint64_t pos = mix64(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), pos,
      [](const auto& pt, std::uint64_t p) { return pt.first < p; });
  const std::size_t start =
      it == points_.end() ? 0 : static_cast<std::size_t>(it - points_.begin());
  for (std::size_t step = 0; step < points_.size() && out.size() < count;
       ++step) {
    const std::uint32_t s = points_[(start + step) % points_.size()].second;
    if (!taken[s]) {
      taken[s] = true;
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace pslocal::shard
