// LocalCluster — N engine+server shards in one process, for tests,
// benches, the qc failover property and the pslocal_shard example.
//
// Each shard is its own ServiceEngine behind its own net::Server on an
// ephemeral loopback port; the shards share nothing but the process (and
// the global scheduler pool unless the engine config names another), so
// a LocalCluster exercises the exact wire paths a multi-host deployment
// would.  kill_shard() is the fault injector: it stops one shard's
// server and engine mid-run, which surviving ShardClients observe as
// transport errors and fail over around.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/server.hpp"
#include "service/engine.hpp"
#include "shard/topology.hpp"

namespace pslocal::shard {

struct LocalClusterConfig {
  std::size_t shards = 2;
  /// Per-shard engine config (each shard gets its own engine + caches;
  /// cache capacity here is *per shard*, so total cache grows with the
  /// shard count — the capacity-scaling story measured in BENCH_shard).
  service::EngineConfig engine;
  /// Per-shard server knobs; port is always ephemeral loopback.
  std::size_t io_threads = 1;
  std::size_t max_connections = 64;
  // Placement pins recorded into topology().
  std::uint64_t ring_seed = 1;
  std::size_t vnodes = 64;
  std::size_t replication = 1;
};

class LocalCluster {
 public:
  explicit LocalCluster(LocalClusterConfig config);
  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Start every shard's engine and server and record the topology.
  /// Idempotent.
  void start();

  /// Stop all still-alive shards (drain mode).  Idempotent; the
  /// destructor calls it.
  void stop();

  /// Fault injection: stop shard `i`'s server, then its engine (reject
  /// mode — queued work is answered "shutdown", matching a process
  /// kill as closely as a clean teardown can).  The endpoint stays in
  /// the topology; clients discover the death through the transport.
  void kill_shard(std::size_t i);

  [[nodiscard]] bool alive(std::size_t i) const;
  [[nodiscard]] std::size_t shards() const { return config_.shards; }

  /// The placement contract for this cluster (valid after start()).
  [[nodiscard]] const Topology& topology() const { return topology_; }

  [[nodiscard]] service::ServiceEngine& engine(std::size_t i);
  [[nodiscard]] net::Server& server(std::size_t i);

 private:
  LocalClusterConfig config_;
  struct Shard {
    std::unique_ptr<service::ServiceEngine> engine;
    std::unique_ptr<net::Server> server;
    bool alive = false;
  };
  std::vector<Shard> shards_;
  Topology topology_;
  bool started_ = false;
};

}  // namespace pslocal::shard
