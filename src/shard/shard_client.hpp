// ShardClient — routed calls with replica fan-out and typed failover.
//
// One ShardClient owns one net::Client per shard (like net::Client it is
// single-threaded; closed-loop load generators drive one per worker).
// call() routes the request by its content-addressed key and then:
//
//  * fans out to the first `replication` live replicas in ring
//    preference order, first response wins — duplicates are *expected*
//    and absorbed later (pending lists + try_wait), never double-counted;
//  * on NACK(queue_full) — retryable by the net contract — drops that
//    replica from the race and pulls in the next spare; when every
//    candidate NACKed, sleeps the seeded backoff schedule (the same
//    pure-function-of-seed schedule as net::Client::call_with_retry) and
//    re-fans-out from the top;
//  * on NACK(shutdown) or a transport error marks the shard down (its
//    client is rebuilt on the next call that needs it) and fails over to
//    the next replica — beyond the replica set if need be, so a request
//    is only lost when *no* shard can serve it.
//
// Responses are byte-deterministic, so which replica wins never shows in
// the payload: replay files stay cmp-identical across replication
// factors and mid-run shard deaths (the qc `shard_failover` property
// kills a replica under rf=2 and demands zero lost responses).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/client.hpp"
#include "shard/router.hpp"
#include "shard/topology.hpp"

namespace pslocal::shard {

struct ShardClientConfig {
  Topology topology;
  /// Backoff for queue-full re-fan-out; also caps total sends per call
  /// (max_attempts).  Seeded: the schedule is a pure function of
  /// policy.seed (net::Client::backoff_delays_us).
  net::Client::RetryPolicy retry;
  int connect_timeout_ms = 5000;
  int io_timeout_ms = 10000;
  /// Fan-out breadth; 0 = topology.replication.
  std::size_t replication = 0;
};

class ShardClient {
 public:
  explicit ShardClient(ShardClientConfig config);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  /// Eagerly connect every shard.  Unreachable shards are marked down
  /// (not fatal — call() fails over); throws only if *no* shard accepts.
  void connect();

  /// Route, fan out, failover; see the header comment.  The Result's
  /// attempts field counts sends across all replicas.
  [[nodiscard]] net::Client::Result call(const service::Request& request);

  /// Absorb outstanding duplicate responses (blocking, bounded by
  /// `timeout_ms` per frame).  Call at end of run so loser replicas'
  /// answers are accounted before the stats are read.
  void drain(int timeout_ms = 1000);

  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t sends = 0;          // frames sent (all replicas)
    std::uint64_t fanout_sends = 0;   // of which beyond-the-first
    std::uint64_t duplicates_suppressed = 0;  // loser responses absorbed
    std::uint64_t reroutes_queue_full = 0;    // NACK(queue_full) reroutes
    std::uint64_t reroutes_shed = 0;  // NACK(shed_retry_after) reroutes
    std::uint64_t failovers = 0;      // shutdown/transport replica switches
    std::uint64_t reconnects = 0;     // client rebuilds after down-marks
    std::uint64_t pending_duplicates = 0;     // unabsorbed at stats() time
  };
  [[nodiscard]] Stats stats() const;

  /// Requests sent to each shard (winner and loser sends alike) — the
  /// shard-imbalance view reported in BENCH_shard.json.
  [[nodiscard]] std::vector<std::uint64_t> routed_per_shard() const;

  [[nodiscard]] const ShardRouter& router() const { return router_; }
  [[nodiscard]] std::size_t replication() const { return replication_; }

  /// Shard liveness as this client last observed it.
  [[nodiscard]] bool shard_up(std::size_t shard) const;

 private:
  struct Shard {
    std::unique_ptr<net::Client> client;  // rebuilt on reconnect
    bool up = false;
    std::vector<std::uint64_t> pending;  // duplicate ids to absorb
  };

  bool ensure_up(std::size_t s);
  void mark_down(std::size_t s);
  void absorb_pending(std::size_t s);

  ShardClientConfig config_;
  ShardRouter router_;
  std::size_t replication_ = 1;
  std::vector<Shard> shards_;
  std::vector<std::uint64_t> delays_us_;  // precomputed backoff schedule
  std::vector<std::uint64_t> routed_;
  Stats stats_;
};

}  // namespace pslocal::shard
