#include "shard/cluster.hpp"

#include "util/check.hpp"

namespace pslocal::shard {

LocalCluster::LocalCluster(LocalClusterConfig config)
    : config_(std::move(config)) {
  PSL_CHECK_MSG(config_.shards >= 1, "shard: cluster needs >= 1 shard");
  PSL_CHECK_MSG(config_.replication >= 1 &&
                    config_.replication <= config_.shards,
                "shard: replication " << config_.replication
                                      << " out of range for "
                                      << config_.shards << " shards");
  shards_.resize(config_.shards);
}

LocalCluster::~LocalCluster() { stop(); }

void LocalCluster::start() {
  if (started_) return;
  started_ = true;
  topology_ = Topology{};
  topology_.ring_seed = config_.ring_seed;
  topology_.vnodes = config_.vnodes;
  topology_.replication = config_.replication;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    // Per-shard identity: threads of shard i show up as "shard<i>.*"
    // tracks in traces, and its stats response reports "shard<i>".
    const std::string name = "shard" + std::to_string(i);
    service::EngineConfig ec = config_.engine;
    ec.name = name;
    shard.engine = std::make_unique<service::ServiceEngine>(ec);
    shard.engine->start();
    net::Server::Config sc;  // ephemeral loopback port
    sc.io_threads = config_.io_threads;
    sc.max_connections = config_.max_connections;
    sc.name = name;
    shard.server = std::make_unique<net::Server>(*shard.engine, sc);
    shard.server->start();
    shard.alive = true;
    topology_.shards.push_back(Endpoint{sc.host, shard.server->port()});
  }
  validate_topology(topology_);
}

void LocalCluster::stop() {
  for (Shard& shard : shards_) {
    if (!shard.alive) continue;
    shard.server->stop();
    shard.engine->stop(service::ServiceEngine::StopMode::kDrain);
    shard.alive = false;
  }
}

void LocalCluster::kill_shard(std::size_t i) {
  PSL_EXPECTS(i < shards_.size());
  Shard& shard = shards_[i];
  if (!shard.alive) return;
  shard.server->stop();
  shard.engine->stop(service::ServiceEngine::StopMode::kReject);
  shard.alive = false;
}

bool LocalCluster::alive(std::size_t i) const {
  PSL_EXPECTS(i < shards_.size());
  return shards_[i].alive;
}

service::ServiceEngine& LocalCluster::engine(std::size_t i) {
  PSL_EXPECTS(i < shards_.size() && shards_[i].engine != nullptr);
  return *shards_[i].engine;
}

net::Server& LocalCluster::server(std::size_t i) {
  PSL_EXPECTS(i < shards_.size() && shards_[i].server != nullptr);
  return *shards_[i].server;
}

}  // namespace pslocal::shard
