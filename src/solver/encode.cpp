#include "solver/encode.hpp"

namespace pslocal::solver {

std::vector<VertexId> MaxISEncoding::decode(
    const std::vector<bool>& model) const {
  PSL_EXPECTS(model.size() >= vertex_count);
  std::vector<VertexId> is;
  for (VertexId v = 0; v < vertex_count; ++v)
    if (model[vertex_var(v) - 1]) is.push_back(v);
  return is;
}

MaxISEncoding encode_maxis(const Graph& g) {
  MaxISEncoding enc;
  enc.vertex_count = g.vertex_count();
  enc.formula.ensure_vars(enc.vertex_count);
  // Hard: adjacent vertices exclude each other.  Neighbor lists are
  // sorted, so emitting each edge at its lower endpoint fixes the order.
  for (VertexId u = 0; u < g.vertex_count(); ++u) {
    const Lit not_u = -static_cast<Lit>(enc.vertex_var(u));
    for (const VertexId v : g.neighbors(u)) {
      if (v <= u) continue;
      enc.formula.add_hard({not_u, -static_cast<Lit>(enc.vertex_var(v))});
    }
  }
  // Soft: every vertex wants in, weight 1 — satisfied weight = |IS|.
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    enc.formula.add_soft(1, {static_cast<Lit>(enc.vertex_var(v))});
  return enc;
}

CfColoring CfDecisionEncoding::decode(const std::vector<bool>& model) const {
  PSL_EXPECTS(model.size() >= vertex_count * k);
  CfColoring coloring(vertex_count, kCfUncolored);
  for (VertexId v = 0; v < vertex_count; ++v) {
    for (std::size_t c = 1; c <= k; ++c) {
      if (!model[color_var(v, c) - 1]) continue;
      PSL_CHECK_MSG(coloring[v] == kCfUncolored,
                    "cf model assigns vertex " << v << " two colors");
      coloring[v] = c;
    }
    PSL_CHECK_MSG(coloring[v] != kCfUncolored,
                  "cf model leaves vertex " << v << " uncolored");
  }
  return coloring;
}

CfDecisionEncoding encode_cf_decision(const Hypergraph& h, std::size_t k) {
  PSL_EXPECTS(k >= 1);
  CfDecisionEncoding enc;
  enc.vertex_count = h.vertex_count();
  enc.k = k;
  enc.formula.ensure_vars(enc.vertex_count * k);

  // Exactly one color per vertex (the single-color regime of Lemma 2.1 a,
  // matching exact_min_cf_colors).
  for (VertexId v = 0; v < h.vertex_count(); ++v) {
    Clause at_least;
    at_least.reserve(k);
    for (std::size_t c = 1; c <= k; ++c)
      at_least.push_back(static_cast<Lit>(enc.color_var(v, c)));
    enc.formula.add_clause(std::move(at_least));
    for (std::size_t c = 1; c <= k; ++c)
      for (std::size_t d = c + 1; d <= k; ++d)
        enc.formula.add_clause({-static_cast<Lit>(enc.color_var(v, c)),
                                -static_cast<Lit>(enc.color_var(v, d))});
  }

  // Per edge: some vertex carries some color uniquely.  u_{e,v,c} is a
  // fresh auxiliary witnessing that choice.
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto edge = h.edge(e);
    Clause some_witness;
    some_witness.reserve(edge.size() * k);
    for (const VertexId v : edge) {
      for (std::size_t c = 1; c <= k; ++c) {
        const Var u = enc.formula.new_var();
        const Lit not_u = -static_cast<Lit>(u);
        some_witness.push_back(static_cast<Lit>(u));
        enc.formula.add_clause(
            {not_u, static_cast<Lit>(enc.color_var(v, c))});
        for (const VertexId w : edge) {
          if (w == v) continue;
          enc.formula.add_clause(
              {not_u, -static_cast<Lit>(enc.color_var(w, c))});
        }
      }
    }
    enc.formula.add_clause(std::move(some_witness));
  }
  return enc;
}

void add_at_most(CnfFormula& formula, const std::vector<Lit>& lits,
                 std::size_t bound) {
  const std::size_t m = lits.size();
  if (bound >= m) return;  // vacuous
  if (bound == 0) {
    for (const Lit lit : lits) formula.add_clause({-lit});
    return;
  }
  // Sinz sequential counter: s[i][j] = "at least j+1 of lits[0..i] are
  // true".  Auxiliaries allocated row-major in loop order (determinism).
  std::vector<Var> prev(bound), cur(bound);
  for (std::size_t j = 0; j < bound; ++j) prev[j] = formula.new_var();
  formula.add_clause({-lits[0], static_cast<Lit>(prev[0])});
  for (std::size_t j = 1; j < bound; ++j)
    formula.add_clause({-static_cast<Lit>(prev[j])});
  for (std::size_t i = 1; i + 1 <= m - 1; ++i) {
    for (std::size_t j = 0; j < bound; ++j) cur[j] = formula.new_var();
    formula.add_clause({-lits[i], static_cast<Lit>(cur[0])});
    formula.add_clause(
        {-static_cast<Lit>(prev[0]), static_cast<Lit>(cur[0])});
    for (std::size_t j = 1; j < bound; ++j) {
      formula.add_clause({-lits[i], -static_cast<Lit>(prev[j - 1]),
                          static_cast<Lit>(cur[j])});
      formula.add_clause(
          {-static_cast<Lit>(prev[j]), static_cast<Lit>(cur[j])});
    }
    formula.add_clause({-lits[i], -static_cast<Lit>(prev[bound - 1])});
    std::swap(prev, cur);
  }
  formula.add_clause({-lits[m - 1], -static_cast<Lit>(prev[bound - 1])});
  return;
}

}  // namespace pslocal::solver
