// Kernelizing pruner stage of the exact-oracle backend.
//
// Thin instrumentation wrapper over mis/kernelization: the same
// α-preserving rules (isolated / pendant / domination) run once before
// the encoder, shrinking the instance the SAT search has to close, and
// the model is lifted back through the kernel map afterwards.  The lift
// here additionally RE-VERIFIES the result against the original graph
// (PSL_CHECK on is_independent_set) — the backend claims λ = 1, so a
// bug anywhere in encode/solve/lift must fail loudly, not ship a wrong
// certificate.  Rule applications surface as solver.prune.* counters.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "mis/kernelization.hpp"

namespace pslocal::solver {

/// Run the α-preserving reduction rules to exhaustion (under a
/// solver.prune span, with rule-application counters).
[[nodiscard]] MaxISKernel prune_maxis(const Graph& g);

/// An identity kernel (kernel == g, nothing forced) for the
/// kernelize=false path, so downstream code handles one shape.
[[nodiscard]] MaxISKernel identity_kernel(const Graph& g);

/// Lift a kernel IS back to `original` and re-verify it there.
/// PSL_CHECKs that the lifted set is independent in the original graph.
[[nodiscard]] std::vector<VertexId> lift_and_verify(
    const Graph& original, const MaxISKernel& kernel,
    const std::vector<VertexId>& kernel_is);

}  // namespace pslocal::solver
