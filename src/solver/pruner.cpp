#include "solver/pruner.hpp"

#include <numeric>

#include "mis/independent_set.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pslocal::solver {

MaxISKernel prune_maxis(const Graph& g) {
  PSL_OBS_SPAN("solver.prune");
  static const obs::Counter g_runs("solver.prune.runs");
  static const obs::Counter g_isolated("solver.prune.isolated");
  static const obs::Counter g_pendant("solver.prune.pendant");
  static const obs::Counter g_domination("solver.prune.domination");
  static const obs::Counter g_removed("solver.prune.vertices_removed");
  MaxISKernel kernel = kernelize_maxis(g);
  g_runs.add();
  g_isolated.add(kernel.isolated_applications);
  g_pendant.add(kernel.pendant_applications);
  g_domination.add(kernel.domination_applications);
  g_removed.add(g.vertex_count() - kernel.kernel.vertex_count());
  return kernel;
}

MaxISKernel identity_kernel(const Graph& g) {
  MaxISKernel kernel;
  kernel.kernel = g;
  kernel.to_original.resize(g.vertex_count());
  std::iota(kernel.to_original.begin(), kernel.to_original.end(),
            VertexId{0});
  return kernel;
}

std::vector<VertexId> lift_and_verify(
    const Graph& original, const MaxISKernel& kernel,
    const std::vector<VertexId>& kernel_is) {
  std::vector<VertexId> lifted = lift_kernel_solution(kernel, kernel_is);
  PSL_CHECK_MSG(is_independent_set(original, lifted),
                "solver: lifted model is not independent in the original "
                "graph — encode/solve/lift chain is broken");
  return lifted;
}

}  // namespace pslocal::solver
