// src/solver/ — pluggable exact-oracle backend.
//
//   solver/cnf.hpp     CNF / WCNF formula types + DIMACS/WDIMACS export
//   solver/encode.hpp  byte-deterministic MaxIS→WCNF, CF→CNF encoders
//   solver/dpll.hpp    self-contained reference SAT solver
//   solver/pruner.hpp  kernelizing pruner (α-preserving, re-verified)
//   solver/solver.hpp  AbstractSolver interface + SolverFactory (this)
//
// An AbstractSolver answers exact MaxIS queries through the pipeline
// prune → encode → search → lift, returning the set together with a
// machine-checkable certificate summary (formula shape, search stats,
// kernel effect, formula hash).  Backends register by name in the
// SolverFactory; "dpll" — the built-in reference solver — is always
// present, and an external SAT/MaxSAT solver plugs in by registering a
// maker (or, with no linking at all, by consuming the DIMACS/WDIMACS
// exports — see docs/solver.md).
//
// make_solver_oracle() adapts a backend to the MaxISOracle abstraction
// with lambda_guarantee() == 1.0, so the Theorem 1.1 reduction, the
// experiments, the qc differential oracles, and service dispatch swap
// it in untouched.  The λ = 1 claim is enforced: the adapter PSL_CHECKs
// proven_optimal, so a budget-exhausted search fails loudly instead of
// silently degrading the guarantee.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mis/oracle.hpp"
#include "solver/dpll.hpp"

namespace pslocal::solver {

struct SolverOptions {
  /// Seed for any randomized tie-breaking (dpll: decision polarities).
  std::uint64_t seed = 0;
  /// Total branching-decision budget across all SAT queries of one
  /// solve_maxis call.  Exhaustion yields proven_optimal == false.
  std::uint64_t decision_budget = kDefaultDecisionBudget;
  /// Run the α-preserving kernelization pruner before encoding.
  bool kernelize = true;
};

/// Exact MaxIS answer plus its certificate summary.  Every field is a
/// deterministic function of (graph, backend, options) — the
/// exact_certificate service kind serializes them byte-for-byte.
struct ExactSolveResult {
  std::vector<VertexId> independent_set;
  /// True iff optimality was proven (search closed, not budget-cut).
  bool proven_optimal = false;
  // Certificate: shape of the kernel encoding this answer came from.
  std::size_t formula_vars = 0;
  std::size_t formula_clauses = 0;  // hard + soft
  std::uint64_t formula_hash = 0;   // fnv1a64 of the WDIMACS bytes
  // Certificate: search effort.
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  // Certificate: pruner effect.
  std::size_t kernel_vertices = 0;
  std::size_t kernel_forced = 0;
};

/// A pluggable exact MaxIS solver.  Implementations must be
/// deterministic under a fixed (graph, options) pair and must only set
/// proven_optimal when |independent_set| == α(g).
class AbstractSolver {
 public:
  virtual ~AbstractSolver() = default;

  /// Backend identifier ("dpll", "minisat", ...), also the factory key.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Solve MaxIS exactly (or as far as the budget allows).  The
  /// returned set is always a verified IS of g, even when unproven.
  [[nodiscard]] virtual ExactSolveResult solve_maxis(
      const Graph& g, const SolverOptions& options) = 0;
};

using AbstractSolverPtr = std::unique_ptr<AbstractSolver>;

/// Name → backend registry.  Built-ins ("dpll") are registered in the
/// constructor — explicitly, not via static self-registration objects,
/// so archive linking can never drop them.
class SolverFactory {
 public:
  using Maker = AbstractSolverPtr (*)();

  static SolverFactory& instance();

  /// Register (or replace) a backend.  Thread-safe.
  void register_backend(const std::string& name, Maker maker);

  /// Construct a backend by name; PSL_EXPECTS the name is registered.
  [[nodiscard]] AbstractSolverPtr make(const std::string& name) const;

  [[nodiscard]] bool has(const std::string& name) const;

  /// Registered backend names, sorted (deterministic listings).
  [[nodiscard]] std::vector<std::string> backends() const;

 private:
  SolverFactory();

  mutable std::mutex mu_;
  std::map<std::string, Maker> makers_;
};

/// Adapt a factory backend to the MaxISOracle abstraction.  λ = 1:
/// solve() PSL_CHECKs proven_optimal, so the guarantee is real.
[[nodiscard]] MaxISOraclePtr make_solver_oracle(
    const std::string& backend = "dpll", SolverOptions options = {});

}  // namespace pslocal::solver
