// Self-contained reference SAT solver: DPLL with two-watched-literal
// unit propagation and chronological backtracking.
//
// This is the backend that makes src/solver/ work out of the box with no
// external dependency.  It is deliberately simple — no clause learning,
// no restarts — but fully deterministic: the branching order is a static
// occurrence-count ranking (ties by variable index) and decision
// polarities are drawn once from a seeded Rng, so the same (formula,
// seed) pair explores the identical search tree on every run and every
// thread count.  A decision budget turns it into an anytime procedure:
// `proven == false` means the budget ran out, never a wrong answer.
//
// External solvers plug in above this layer (see SolverFactory in
// solver/solver.hpp); nothing here is MaxIS-specific.
#pragma once

#include <cstdint>
#include <vector>

#include "solver/cnf.hpp"

namespace pslocal::solver {

struct SatStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
};

struct SatResult {
  bool sat = false;
  /// True iff the answer is definitive. `sat == false && !proven` means
  /// the decision budget was exhausted with the search still open.
  bool proven = false;
  /// Satisfying assignment when `sat` (model[i] = value of variable i+1).
  std::vector<bool> model;
  SatStats stats;
};

inline constexpr std::uint64_t kDefaultDecisionBudget = 10'000'000;

/// Decide satisfiability of a hard CNF formula.  Deterministic under a
/// fixed (formula, seed); `decision_budget` caps the number of branching
/// decisions.
[[nodiscard]] SatResult solve_cnf(
    const CnfFormula& formula, std::uint64_t seed = 0,
    std::uint64_t decision_budget = kDefaultDecisionBudget);

}  // namespace pslocal::solver
