#include "solver/cnf.hpp"

#include <sstream>

namespace pslocal::solver {

namespace {

void append_clause(std::ostringstream& os, const Clause& clause) {
  for (const Lit lit : clause) os << lit << ' ';
  os << "0\n";
}

}  // namespace

void CnfFormula::add_clause(Clause clause) {
  PSL_EXPECTS_MSG(!clause.empty(), "cnf: empty clause (formula trivially "
                                   "unsat — encode that explicitly)");
  for (const Lit lit : clause)
    PSL_EXPECTS_MSG(var_of(lit) <= num_vars_,
                    "cnf: literal " << lit << " references an unallocated "
                                       "variable (num_vars="
                                    << num_vars_ << ")");
  clauses_.push_back(std::move(clause));
}

void WcnfFormula::add_soft(std::uint64_t weight, Clause clause) {
  PSL_EXPECTS_MSG(weight > 0, "wcnf: soft clause with zero weight");
  for (const Lit lit : clause)
    PSL_EXPECTS_MSG(var_of(lit) <= var_count(),
                    "wcnf: soft literal " << lit
                                          << " references an unallocated "
                                             "variable");
  soft_.emplace_back(weight, std::move(clause));
}

std::uint64_t WcnfFormula::soft_weight_total() const {
  std::uint64_t total = 0;
  for (const auto& [weight, clause] : soft_) total += weight;
  return total;
}

std::string to_dimacs(const CnfFormula& formula,
                      const std::vector<std::string>& comments) {
  std::ostringstream os;
  for (const auto& line : comments) os << "c " << line << "\n";
  os << "p cnf " << formula.var_count() << ' ' << formula.clause_count()
     << "\n";
  for (const Clause& clause : formula.clauses()) append_clause(os, clause);
  return os.str();
}

std::string to_wdimacs(const WcnfFormula& formula,
                       const std::vector<std::string>& comments) {
  const std::uint64_t top = formula.soft_weight_total() + 1;
  std::ostringstream os;
  for (const auto& line : comments) os << "c " << line << "\n";
  os << "p wcnf " << formula.var_count() << ' '
     << (formula.hard_count() + formula.soft_count()) << ' ' << top << "\n";
  for (const Clause& clause : formula.hard().clauses()) {
    os << top << ' ';
    append_clause(os, clause);
  }
  for (const auto& [weight, clause] : formula.soft()) {
    os << weight << ' ';
    append_clause(os, clause);
  }
  return os.str();
}

}  // namespace pslocal::solver
