#include "solver/solver.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/encode.hpp"
#include "solver/pruner.hpp"
#include "util/hash.hpp"

namespace pslocal::solver {

namespace {

/// Deterministic index-order greedy: a fast incumbent so the SAT search
/// starts above the easy part of the objective.
std::vector<VertexId> greedy_seed(const Graph& g) {
  std::vector<bool> blocked(g.vertex_count(), false);
  std::vector<VertexId> is;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (blocked[v]) continue;
    is.push_back(v);
    for (const VertexId w : g.neighbors(v)) blocked[w] = true;
  }
  return is;
}

/// The built-in reference backend: prune → encode → iterated SAT
/// decision queries ("is there an IS of size >= t", i.e. at most n - t
/// vertices excluded, via the Sinz counter) until UNSAT proves the
/// incumbent optimal or the decision budget runs out.
class DpllBackend final : public AbstractSolver {
 public:
  [[nodiscard]] std::string name() const override { return "dpll"; }

  [[nodiscard]] ExactSolveResult solve_maxis(
      const Graph& g, const SolverOptions& options) override {
    PSL_OBS_SPAN("solver.solve");
    static const obs::Counter g_solves("solver.solves");
    static const obs::Counter g_queries("solver.sat_queries");
    g_solves.add();

    const MaxISKernel kernel =
        options.kernelize ? prune_maxis(g) : identity_kernel(g);
    ExactSolveResult result;
    result.kernel_vertices = kernel.kernel.vertex_count();
    result.kernel_forced = kernel.forced.size();

    MaxISEncoding enc;
    {
      PSL_OBS_SPAN("solver.encode");
      enc = encode_maxis(kernel.kernel);
      result.formula_vars = enc.formula.var_count();
      result.formula_clauses =
          enc.formula.hard_count() + enc.formula.soft_count();
      result.formula_hash = fnv1a64(to_wdimacs(enc.formula, {}));
    }

    const std::size_t n = kernel.kernel.vertex_count();
    std::vector<VertexId> incumbent;
    bool proven = true;
    if (n > 0) {
      PSL_OBS_SPAN("solver.search");
      incumbent = greedy_seed(kernel.kernel);
      std::vector<Lit> excluded;
      excluded.reserve(n);
      for (VertexId v = 0; v < n; ++v)
        excluded.push_back(-static_cast<Lit>(enc.vertex_var(v)));
      std::uint64_t remaining = options.decision_budget;
      std::size_t target = incumbent.size() + 1;
      while (target <= n) {
        CnfFormula query = enc.formula.hard();
        add_at_most(query, excluded, n - target);
        const SatResult sat =
            solve_cnf(query, hash_combine(options.seed, target), remaining);
        g_queries.add();
        result.decisions += sat.stats.decisions;
        result.propagations += sat.stats.propagations;
        result.conflicts += sat.stats.conflicts;
        remaining -= std::min(remaining, sat.stats.decisions);
        if (!sat.proven) {  // budget exhausted mid-query
          proven = false;
          break;
        }
        if (!sat.sat) break;  // UNSAT: incumbent is optimal
        incumbent = enc.decode(sat.model);
        PSL_CHECK(incumbent.size() >= target);
        target = incumbent.size() + 1;
      }
    }

    result.independent_set = lift_and_verify(g, kernel, incumbent);
    result.proven_optimal = proven;
    return result;
  }
};

/// MaxISOracle adapter over a factory backend.  λ = 1 is enforced: an
/// unproven (budget-cut) answer trips PSL_CHECK instead of silently
/// weakening the guarantee the reduction relies on.
class CnfExactOracle final : public MaxISOracle {
 public:
  CnfExactOracle(std::string backend, SolverOptions options)
      : backend_(std::move(backend)), options_(options) {}

  [[nodiscard]] std::vector<VertexId> solve(const Graph& g) override {
    const AbstractSolverPtr solver =
        SolverFactory::instance().make(backend_);
    ExactSolveResult result = solver->solve_maxis(g, options_);
    PSL_CHECK_MSG(result.proven_optimal,
                  "solver oracle '" << backend_
                                    << "' claims lambda = 1 but the search "
                                       "was budget-cut; raise "
                                       "SolverOptions::decision_budget");
    return std::move(result.independent_set);
  }

  [[nodiscard]] std::string name() const override {
    return "cnf-" + backend_;
  }

  [[nodiscard]] std::optional<double> lambda_guarantee() const override {
    return 1.0;
  }

 private:
  std::string backend_;
  SolverOptions options_;
};

}  // namespace

SolverFactory::SolverFactory() {
  makers_["dpll"] = []() -> AbstractSolverPtr {
    return std::make_unique<DpllBackend>();
  };
}

SolverFactory& SolverFactory::instance() {
  static SolverFactory factory;
  return factory;
}

void SolverFactory::register_backend(const std::string& name, Maker maker) {
  PSL_EXPECTS(maker != nullptr);
  const std::lock_guard<std::mutex> lock(mu_);
  makers_[name] = maker;
}

AbstractSolverPtr SolverFactory::make(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = makers_.find(name);
  PSL_EXPECTS_MSG(it != makers_.end(),
                  "solver: unknown backend '" << name << "'");
  return it->second();
}

bool SolverFactory::has(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return makers_.count(name) != 0;
}

std::vector<std::string> SolverFactory::backends() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(makers_.size());
  for (const auto& [name, maker] : makers_) names.push_back(name);
  return names;
}

MaxISOraclePtr make_solver_oracle(const std::string& backend,
                                  SolverOptions options) {
  PSL_EXPECTS_MSG(SolverFactory::instance().has(backend),
                  "solver: unknown backend '" << backend << "'");
  return std::make_unique<CnfExactOracle>(backend, options);
}

}  // namespace pslocal::solver
