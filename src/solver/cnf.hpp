// Propositional formula types of the exact-oracle backend (src/solver/).
//
// A CnfFormula is a conjunction of hard clauses over DIMACS-style
// variables 1..num_vars; a WcnfFormula adds weighted soft clauses (the
// MaxSAT objective).  Both are plain insertion-ordered containers: the
// encoders (solver/encode.hpp) walk their inputs in index order, so a
// formula built from a fixed instance is identical — clause by clause,
// literal by literal — across runs and thread counts.  That is what
// makes the DIMACS/WDIMACS exports below byte-deterministic, the same
// golden-bytes discipline as the service replay files.
//
// Literal convention (DIMACS): a literal is a non-zero signed integer,
// +v for variable v, -v for its negation.  Variable 0 does not exist.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace pslocal::solver {

/// DIMACS variable (1-based) and signed literal (+v / -v, never 0).
using Var = std::uint32_t;
using Lit = std::int32_t;

[[nodiscard]] inline Var var_of(Lit lit) {
  PSL_EXPECTS(lit != 0);
  return static_cast<Var>(lit > 0 ? lit : -lit);
}
[[nodiscard]] inline bool positive(Lit lit) { return lit > 0; }

using Clause = std::vector<Lit>;

/// Hard-clause CNF formula with an explicit variable allocator.
class CnfFormula {
 public:
  /// Allocate the next fresh variable (1-based).
  Var new_var() { return static_cast<Var>(++num_vars_); }

  /// Reserve variables 1..n in one step (the encoders lay out their
  /// primary variables as a dense block before any auxiliaries).
  void ensure_vars(std::size_t n) {
    if (n > num_vars_) num_vars_ = n;
  }

  /// Append a clause; every literal must reference an allocated variable.
  void add_clause(Clause clause);

  [[nodiscard]] std::size_t var_count() const { return num_vars_; }
  [[nodiscard]] std::size_t clause_count() const { return clauses_.size(); }
  [[nodiscard]] const std::vector<Clause>& clauses() const { return clauses_; }

 private:
  std::size_t num_vars_ = 0;
  std::vector<Clause> clauses_;
};

/// Weighted partial MaxSAT formula: hard clauses must hold; the solver
/// maximizes the total weight of satisfied soft clauses.
class WcnfFormula {
 public:
  Var new_var() { return hard_.new_var(); }
  void ensure_vars(std::size_t n) { hard_.ensure_vars(n); }

  void add_hard(Clause clause) { hard_.add_clause(std::move(clause)); }
  void add_soft(std::uint64_t weight, Clause clause);

  [[nodiscard]] std::size_t var_count() const { return hard_.var_count(); }
  [[nodiscard]] std::size_t hard_count() const { return hard_.clause_count(); }
  [[nodiscard]] std::size_t soft_count() const { return soft_.size(); }
  [[nodiscard]] const CnfFormula& hard() const { return hard_; }
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, Clause>>& soft()
      const {
    return soft_;
  }
  [[nodiscard]] std::uint64_t soft_weight_total() const;

 private:
  CnfFormula hard_;
  std::vector<std::pair<std::uint64_t, Clause>> soft_;
};

/// DIMACS CNF ("p cnf V C") of a hard formula.  `comments` lines (if
/// any) are emitted first as "c <line>"; callers put provenance there
/// (instance hash, encoder version), never timestamps — the bytes are
/// part of the golden-file contract.
[[nodiscard]] std::string to_dimacs(const CnfFormula& formula,
                                    const std::vector<std::string>& comments);

/// WDIMACS ("p wcnf V C TOP"): hard clauses carry weight TOP =
/// soft_weight_total() + 1, soft clauses their own weight.
[[nodiscard]] std::string to_wdimacs(const WcnfFormula& formula,
                                     const std::vector<std::string>& comments);

}  // namespace pslocal::solver
