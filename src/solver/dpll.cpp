#include "solver/dpll.hpp"

#include <algorithm>
#include <utility>

#include "util/rng.hpp"

namespace pslocal::solver {

namespace {

// Watch-list index of a literal: positive literals at even slots.
std::size_t lit_index(Lit lit) {
  return 2 * static_cast<std::size_t>(var_of(lit) - 1) +
         (positive(lit) ? 0 : 1);
}

class Dpll {
 public:
  Dpll(const CnfFormula& formula, std::uint64_t seed, std::uint64_t budget)
      : clauses_(formula.clauses()),
        num_vars_(formula.var_count()),
        budget_(budget),
        value_(num_vars_ + 1, 0),
        polarity_(num_vars_ + 1, false),
        watches_(2 * num_vars_) {
    Rng rng(seed);
    for (Var v = 1; v <= num_vars_; ++v) polarity_[v] = rng.next_u64() & 1;

    // Static branching order: occurrence count descending, variable
    // index ascending — a fixed ranking, independent of the search.
    std::vector<std::uint32_t> occurrences(num_vars_ + 1, 0);
    for (const Clause& clause : clauses_)
      for (const Lit lit : clause) ++occurrences[var_of(lit)];
    order_.resize(num_vars_);
    for (Var v = 1; v <= num_vars_; ++v) order_[v - 1] = v;
    std::stable_sort(order_.begin(), order_.end(),
                     [&occurrences](Var a, Var b) {
                       return occurrences[a] > occurrences[b];
                     });
  }

  SatResult run() {
    SatResult result;
    // Register watches; size-1 clauses become root-level implications.
    for (std::size_t cid = 0; cid < clauses_.size(); ++cid) {
      Clause& clause = clauses_[cid];
      if (clause.size() == 1) {
        const Lit unit = clause[0];
        if (lit_value(unit) < 0) return finish(result, false, true);
        if (lit_value(unit) == 0) enqueue(unit);
        continue;
      }
      watches_[lit_index(clause[0])].push_back(cid);
      watches_[lit_index(clause[1])].push_back(cid);
    }
    bool conflict = !propagate();
    if (conflict && frames_.empty()) return finish(result, false, true);

    for (;;) {
      if (conflict) {
        ++stats_.conflicts;
        while (!frames_.empty() && frames_.back().flipped) {
          undo_to(frames_.back().trail_size);
          frames_.pop_back();
        }
        if (frames_.empty()) return finish(result, false, true);
        Frame& frame = frames_.back();
        undo_to(frame.trail_size);
        frame.flipped = true;
        enqueue(make_lit(frame.var, !polarity_[frame.var]));
        conflict = !propagate();
        continue;
      }
      const Var branch = next_unassigned();
      if (branch == 0) {
        result.sat = true;
        result.model.resize(num_vars_);
        for (Var v = 1; v <= num_vars_; ++v) result.model[v - 1] =
            value_[v] > 0;
        return finish(result, true, true);
      }
      if (stats_.decisions >= budget_) return finish(result, false, false);
      ++stats_.decisions;
      frames_.push_back({branch, trail_.size(), false});
      enqueue(make_lit(branch, polarity_[branch]));
      conflict = !propagate();
    }
  }

 private:
  struct Frame {
    Var var;
    std::size_t trail_size;
    bool flipped;
  };

  static Lit make_lit(Var v, bool pos) {
    return pos ? static_cast<Lit>(v) : -static_cast<Lit>(v);
  }

  // -1 false, 0 unassigned, +1 true under the current assignment.
  int lit_value(Lit lit) const {
    const int v = value_[var_of(lit)];
    return positive(lit) ? v : -v;
  }

  void enqueue(Lit lit) {
    value_[var_of(lit)] = positive(lit) ? 1 : -1;
    trail_.push_back(lit);
  }

  void undo_to(std::size_t mark) {
    while (trail_.size() > mark) {
      value_[var_of(trail_.back())] = 0;
      trail_.pop_back();
    }
    qhead_ = mark;
  }

  /// Exhaust unit propagation from qhead_.  Returns false on conflict.
  bool propagate() {
    while (qhead_ < trail_.size()) {
      const Lit false_lit = -trail_[qhead_++];
      auto& watch_list = watches_[lit_index(false_lit)];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < watch_list.size(); ++i) {
        const std::size_t cid = watch_list[i];
        Clause& clause = clauses_[cid];
        if (clause[0] == false_lit) std::swap(clause[0], clause[1]);
        if (lit_value(clause[0]) > 0) {  // already satisfied
          watch_list[keep++] = cid;
          continue;
        }
        bool rewatched = false;
        for (std::size_t k = 2; k < clause.size(); ++k) {
          if (lit_value(clause[k]) >= 0) {
            std::swap(clause[1], clause[k]);
            watches_[lit_index(clause[1])].push_back(cid);
            rewatched = true;
            break;
          }
        }
        if (rewatched) continue;
        watch_list[keep++] = cid;
        if (lit_value(clause[0]) < 0) {  // all literals false
          while (++i < watch_list.size()) watch_list[keep++] = watch_list[i];
          watch_list.resize(keep);
          return false;
        }
        enqueue(clause[0]);
        ++stats_.propagations;
      }
      watch_list.resize(keep);
    }
    return true;
  }

  Var next_unassigned() const {
    for (const Var v : order_)
      if (value_[v] == 0) return v;
    return 0;
  }

  SatResult finish(SatResult& result, bool sat, bool proven) {
    result.sat = sat;
    result.proven = proven;
    result.stats = stats_;
    return result;
  }

  std::vector<Clause> clauses_;
  std::size_t num_vars_;
  std::uint64_t budget_;
  std::vector<std::int8_t> value_;
  std::vector<bool> polarity_;
  std::vector<std::vector<std::size_t>> watches_;
  std::vector<Var> order_;
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  std::vector<Frame> frames_;
  SatStats stats_;
};

}  // namespace

SatResult solve_cnf(const CnfFormula& formula, std::uint64_t seed,
                    std::uint64_t decision_budget) {
  return Dpll(formula, seed, decision_budget).run();
}

}  // namespace pslocal::solver
