// Byte-deterministic encoders: MaxIS → WCNF, CF k-colorability → CNF.
//
// MaxIS (the λ=1 oracle's workload): variable x_v (= DIMACS var v+1) per
// vertex, one hard clause (¬x_u ∨ ¬x_v) per graph edge, one unit soft
// clause (x_v) of weight 1 per vertex.  An optimal MaxSAT model is
// exactly a maximum independent set, so the encoding carries the full
// objective — exporting it as WDIMACS makes any external MaxSAT solver
// an exact oracle with no further glue.
//
// CF k-colorability (the paper's decision problem, single-color regime
// of Lemma 2.1 a — every vertex gets exactly one color, matching
// exact_min_cf_colors): variables x_{v,c} "v has color c" plus
// auxiliaries u_{e,v,c} "edge e is made happy by v uniquely carrying c".
// Clauses: exactly-one color per vertex, at least one u per edge, and
// u_{e,v,c} → x_{v,c} ∧ (¬x_{w,c} for every other w ∈ e).  The formula
// is satisfiable iff H admits a CF k-coloring, and a model decodes to a
// witness coloring.
//
// Both encoders walk their input in index order and allocate variables
// in a fixed layout, so the emitted formula — and its DIMACS bytes —
// is identical across runs and thread counts (golden-bytes tested).
#pragma once

#include <cstddef>
#include <vector>

#include "coloring/conflict_free.hpp"
#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "solver/cnf.hpp"

namespace pslocal::solver {

struct MaxISEncoding {
  WcnfFormula formula;
  std::size_t vertex_count = 0;

  /// DIMACS variable of vertex v (v + 1).
  [[nodiscard]] Var vertex_var(VertexId v) const {
    PSL_EXPECTS(v < vertex_count);
    return static_cast<Var>(v + 1);
  }

  /// The independent set selected by a model (model[i] = value of
  /// DIMACS variable i+1), ascending.  PSL_EXPECTS the model covers
  /// every vertex variable.
  [[nodiscard]] std::vector<VertexId> decode(
      const std::vector<bool>& model) const;
};

[[nodiscard]] MaxISEncoding encode_maxis(const Graph& g);

struct CfDecisionEncoding {
  CnfFormula formula;
  std::size_t vertex_count = 0;
  std::size_t k = 0;

  /// DIMACS variable of "vertex v has color c" (c in [1, k]).
  [[nodiscard]] Var color_var(VertexId v, std::size_t c) const {
    PSL_EXPECTS(v < vertex_count);
    PSL_EXPECTS(c >= 1 && c <= k);
    return static_cast<Var>(v * k + c);
  }

  /// The coloring selected by a model (every vertex has exactly one
  /// color by construction).
  [[nodiscard]] CfColoring decode(const std::vector<bool>& model) const;
};

[[nodiscard]] CfDecisionEncoding encode_cf_decision(const Hypergraph& h,
                                                    std::size_t k);

/// Append clauses forcing "at most `bound` of `lits` are true" via the
/// Sinz sequential-counter encoding (O(|lits| * bound) fresh variables
/// and clauses).  Used to turn the MaxIS objective into SAT decision
/// queries ("is there an IS of size >= t" = "at most n - t vertices are
/// excluded").  Deterministic: auxiliaries are allocated in loop order.
void add_at_most(CnfFormula& formula, const std::vector<Lit>& lits,
                 std::size_t bound);

}  // namespace pslocal::solver
