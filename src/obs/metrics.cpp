#include "obs/metrics.hpp"

#if PSLOCAL_OBS_ENABLED

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "util/check.hpp"

namespace pslocal::obs {

namespace {

// Fixed slot capacities: blocks must never reallocate, because the
// snapshot reader walks live blocks while their owner threads write.
constexpr std::size_t kMaxCounters = 192;
constexpr std::size_t kMaxGauges = 48;
constexpr std::size_t kMaxHistograms = 48;

// One thread's private slots.  Separate heap allocation per thread and
// 64-byte alignment keep writers off each other's cache lines ("padded
// slots"); the atomics are only ever touched with relaxed load/store by
// the single owning writer, plus relaxed loads from the snapshot reader.
struct alignas(64) ThreadBlock {
  struct HistSlots {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
        buckets{};
  };

  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};
  std::array<HistSlots, kMaxHistograms> hists{};
};

// Single-writer increment: relaxed load + relaxed store, no RMW.
inline void bump(std::atomic<std::uint64_t>& slot, std::uint64_t n) {
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

class Registry {
 public:
  // Leaked singleton: worker threads (and their thread-local block
  // destructors) may outlive any static destruction order we could
  // arrange, so the registry simply never dies.
  static Registry& instance() {
    static Registry* r = new Registry();
    return *r;
  }

  std::uint32_t register_counter(const char* name) {
    return register_in(counter_names_, name, kMaxCounters, "counter");
  }
  std::uint32_t register_gauge(const char* name) {
    return register_in(gauge_names_, name, kMaxGauges, "gauge");
  }
  std::uint32_t register_histogram(const char* name) {
    return register_in(hist_names_, name, kMaxHistograms, "histogram");
  }

  void attach(ThreadBlock* block) {
    std::lock_guard<std::mutex> lk(mu_);
    live_.push_back(block);
  }

  // Fold an exiting thread's block into the retired totals, so counts
  // survive worker-pool resizes and thread churn.
  void retire(ThreadBlock* block) {
    std::lock_guard<std::mutex> lk(mu_);
    merge_block(*block, retired_);
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (*it == block) {
        live_.erase(it);
        break;
      }
    }
    delete block;
  }

  Snapshot snapshot() {
    std::lock_guard<std::mutex> lk(mu_);
    Totals totals = retired_;
    for (ThreadBlock* b : live_) merge_block(*b, totals);
    Snapshot snap;
    for (std::size_t i = 0; i < counter_names_.size(); ++i)
      snap.counters[counter_names_[i]] = totals.counters[i];
    for (std::size_t i = 0; i < gauge_names_.size(); ++i)
      snap.gauges[gauge_names_[i]] = totals.gauges[i];
    for (std::size_t i = 0; i < hist_names_.size(); ++i)
      snap.histograms[hist_names_[i]] = totals.hists[i];
    return snap;
  }

 private:
  struct Totals {
    std::array<std::uint64_t, kMaxCounters> counters{};
    std::array<std::int64_t, kMaxGauges> gauges{};
    std::array<HistogramSnapshot, kMaxHistograms> hists{};
  };

  std::uint32_t register_in(std::vector<std::string>& names, const char* name,
                            std::size_t cap, const char* kind) {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == name) return static_cast<std::uint32_t>(i);
    PSL_CHECK_MSG(names.size() < cap,
                  "obs: too many distinct " << kind << " names (cap " << cap
                                            << ") registering " << name);
    names.emplace_back(name);
    return static_cast<std::uint32_t>(names.size() - 1);
  }

  // All merge ops are commutative, so totals are independent of the
  // order in which threads ran or retired.
  static void merge_block(const ThreadBlock& b, Totals& t) {
    for (std::size_t i = 0; i < kMaxCounters; ++i)
      t.counters[i] += b.counters[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxGauges; ++i)
      t.gauges[i] += b.gauges[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      const auto& h = b.hists[i];
      const std::uint64_t count = h.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      auto& out = t.hists[i];
      const std::uint64_t mn = h.min.load(std::memory_order_relaxed);
      const std::uint64_t mx = h.max.load(std::memory_order_relaxed);
      out.min = out.count == 0 ? mn : std::min(out.min, mn);
      out.max = out.count == 0 ? mx : std::max(out.max, mx);
      out.count += count;
      out.sum += h.sum.load(std::memory_order_relaxed);
      for (std::size_t k = 0; k < HistogramSnapshot::kBuckets; ++k)
        out.buckets[k] += h.buckets[k].load(std::memory_order_relaxed);
    }
  }

  std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<ThreadBlock*> live_;
  Totals retired_;
};

// Thread-local block, attached on first metric touch and folded into
// the retired totals when the thread exits.
struct BlockHolder {
  ThreadBlock* block;
  BlockHolder() : block(new ThreadBlock()) {
    Registry::instance().attach(block);
  }
  ~BlockHolder() { Registry::instance().retire(block); }
};

ThreadBlock& local_block() {
  thread_local BlockHolder holder;
  return *holder.block;
}

}  // namespace

Counter::Counter(const char* name)
    : id_(Registry::instance().register_counter(name)) {}

void Counter::add(std::uint64_t n) const {
  bump(local_block().counters[id_], n);
}

Gauge::Gauge(const char* name)
    : id_(Registry::instance().register_gauge(name)) {}

void Gauge::add(std::int64_t delta) const {
  auto& slot = local_block().gauges[id_];
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

Histogram::Histogram(const char* name)
    : id_(Registry::instance().register_histogram(name)) {}

void Histogram::record(std::uint64_t value) const {
  auto& h = local_block().hists[id_];
  const std::uint64_t count = h.count.load(std::memory_order_relaxed);
  if (count == 0) {
    h.min.store(value, std::memory_order_relaxed);
    h.max.store(value, std::memory_order_relaxed);
  } else {
    if (value < h.min.load(std::memory_order_relaxed))
      h.min.store(value, std::memory_order_relaxed);
    if (value > h.max.load(std::memory_order_relaxed))
      h.max.store(value, std::memory_order_relaxed);
  }
  h.count.store(count + 1, std::memory_order_relaxed);
  bump(h.sum, value);
  bump(h.buckets[histogram_bucket(value)], 1);
}

Snapshot snapshot() { return Registry::instance().snapshot(); }

}  // namespace pslocal::obs

#endif  // PSLOCAL_OBS_ENABLED
