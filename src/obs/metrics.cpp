#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#if PSLOCAL_OBS_ENABLED

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pslocal::obs {

namespace {

// Fixed slot capacities: blocks must never reallocate, because the
// snapshot reader walks live blocks while their owner threads write.
// (Raised for the per-kind service.stage.* histograms, docs/tracing.md.)
constexpr std::size_t kMaxCounters = 256;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 128;

// One thread's private slots.  Separate heap allocation per thread and
// 64-byte alignment keep writers off each other's cache lines ("padded
// slots"); the atomics are only ever touched with relaxed load/store by
// the single owning writer, plus relaxed loads from the snapshot reader.
struct alignas(64) ThreadBlock {
  struct ExemplarSlot {
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> at_ns{0};
  };

  struct HistSlots {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
        buckets{};
    // Per-bucket ring of the most recent exemplar trace_ids.  The
    // cursor is owner-only; the slots are atomics so the snapshot
    // reader's loads are race-free.  A reader may pair a new trace_id
    // with a stale at_ns for one in-flight write — exemplars are
    // diagnostics, recency ordering tolerates that.
    std::array<std::array<ExemplarSlot, HistogramSnapshot::kExemplarSlots>,
               HistogramSnapshot::kBuckets>
        exemplars{};
    std::array<std::uint8_t, HistogramSnapshot::kBuckets> exemplar_cursor{};
  };

  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};
  std::array<HistSlots, kMaxHistograms> hists{};
};

// Single-writer increment: relaxed load + relaxed store, no RMW.
inline void bump(std::atomic<std::uint64_t>& slot, std::uint64_t n) {
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

// Keep the kExemplarSlots newest exemplars of `have` ∪ `add` in `have`,
// newest first.  Ordering by (at_ns, trace_id) makes the merge
// commutative — the result is a max-K over a set, independent of the
// order threads are visited.
void merge_exemplars(
    std::array<HistogramSnapshot::Exemplar, HistogramSnapshot::kExemplarSlots>&
        have,
    const std::array<HistogramSnapshot::Exemplar,
                     HistogramSnapshot::kExemplarSlots>& add) {
  std::array<HistogramSnapshot::Exemplar,
             2 * HistogramSnapshot::kExemplarSlots>
      merged{};
  std::size_t n = 0;
  for (const auto& e : have)
    if (e.trace_id != 0) merged[n++] = e;
  for (const auto& e : add)
    if (e.trace_id != 0) merged[n++] = e;
  std::sort(merged.begin(), merged.begin() + n,
            [](const HistogramSnapshot::Exemplar& a,
               const HistogramSnapshot::Exemplar& b) {
              if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
              return a.trace_id > b.trace_id;
            });
  for (std::size_t i = 0; i < HistogramSnapshot::kExemplarSlots; ++i)
    have[i] = i < n ? merged[i] : HistogramSnapshot::Exemplar{};
}

class Registry {
 public:
  // Leaked singleton: worker threads (and their thread-local block
  // destructors) may outlive any static destruction order we could
  // arrange, so the registry simply never dies.
  static Registry& instance() {
    static Registry* r = new Registry();
    return *r;
  }

  std::uint32_t register_counter(const char* name) {
    return register_in(counter_names_, name, kMaxCounters, "counter");
  }
  std::uint32_t register_gauge(const char* name) {
    return register_in(gauge_names_, name, kMaxGauges, "gauge");
  }
  std::uint32_t register_histogram(const char* name) {
    return register_in(hist_names_, name, kMaxHistograms, "histogram");
  }

  void attach(ThreadBlock* block) {
    std::lock_guard<std::mutex> lk(mu_);
    live_.push_back(block);
  }

  // Fold an exiting thread's block into the retired totals, so counts
  // survive worker-pool resizes and thread churn.
  void retire(ThreadBlock* block) {
    std::lock_guard<std::mutex> lk(mu_);
    merge_block(*block, retired_);
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (*it == block) {
        live_.erase(it);
        break;
      }
    }
    delete block;
  }

  Snapshot snapshot() {
    std::lock_guard<std::mutex> lk(mu_);
    Totals totals = retired_;
    for (ThreadBlock* b : live_) merge_block(*b, totals);
    Snapshot snap;
    for (std::size_t i = 0; i < counter_names_.size(); ++i)
      snap.counters[counter_names_[i]] = totals.counters[i];
    for (std::size_t i = 0; i < gauge_names_.size(); ++i)
      snap.gauges[gauge_names_[i]] = totals.gauges[i];
    for (std::size_t i = 0; i < hist_names_.size(); ++i)
      snap.histograms[hist_names_[i]] = totals.hists[i];
    return snap;
  }

 private:
  struct Totals {
    std::array<std::uint64_t, kMaxCounters> counters{};
    std::array<std::int64_t, kMaxGauges> gauges{};
    std::array<HistogramSnapshot, kMaxHistograms> hists{};
  };

  std::uint32_t register_in(std::vector<std::string>& names, const char* name,
                            std::size_t cap, const char* kind) {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == name) return static_cast<std::uint32_t>(i);
    PSL_CHECK_MSG(names.size() < cap,
                  "obs: too many distinct " << kind << " names (cap " << cap
                                            << ") registering " << name);
    names.emplace_back(name);
    return static_cast<std::uint32_t>(names.size() - 1);
  }

  // All merge ops are commutative (sum / min / max / newest-K), so
  // totals are independent of the order in which threads ran or retired.
  static void merge_block(const ThreadBlock& b, Totals& t) {
    for (std::size_t i = 0; i < kMaxCounters; ++i)
      t.counters[i] += b.counters[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxGauges; ++i)
      t.gauges[i] += b.gauges[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      const auto& h = b.hists[i];
      const std::uint64_t count = h.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      auto& out = t.hists[i];
      const std::uint64_t mn = h.min.load(std::memory_order_relaxed);
      const std::uint64_t mx = h.max.load(std::memory_order_relaxed);
      out.min = out.count == 0 ? mn : std::min(out.min, mn);
      out.max = out.count == 0 ? mx : std::max(out.max, mx);
      out.count += count;
      out.sum += h.sum.load(std::memory_order_relaxed);
      for (std::size_t k = 0; k < HistogramSnapshot::kBuckets; ++k) {
        out.buckets[k] += h.buckets[k].load(std::memory_order_relaxed);
        std::array<HistogramSnapshot::Exemplar,
                   HistogramSnapshot::kExemplarSlots>
            theirs{};
        bool any = false;
        for (std::size_t s = 0; s < HistogramSnapshot::kExemplarSlots; ++s) {
          theirs[s].trace_id =
              h.exemplars[k][s].trace_id.load(std::memory_order_relaxed);
          theirs[s].at_ns =
              h.exemplars[k][s].at_ns.load(std::memory_order_relaxed);
          any = any || theirs[s].trace_id != 0;
        }
        if (any) merge_exemplars(out.exemplars[k], theirs);
      }
    }
  }

  std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<ThreadBlock*> live_;
  Totals retired_;
};

// Thread-local block, attached on first metric touch and folded into
// the retired totals when the thread exits.
struct BlockHolder {
  ThreadBlock* block;
  BlockHolder() : block(new ThreadBlock()) {
    Registry::instance().attach(block);
  }
  ~BlockHolder() { Registry::instance().retire(block); }
};

ThreadBlock& local_block() {
  thread_local BlockHolder holder;
  return *holder.block;
}

}  // namespace

Counter::Counter(const char* name)
    : id_(Registry::instance().register_counter(name)) {}

void Counter::add(std::uint64_t n) const {
  bump(local_block().counters[id_], n);
}

Gauge::Gauge(const char* name)
    : id_(Registry::instance().register_gauge(name)) {}

void Gauge::add(std::int64_t delta) const {
  auto& slot = local_block().gauges[id_];
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

Histogram::Histogram(const char* name)
    : id_(Registry::instance().register_histogram(name)) {}

void Histogram::record(std::uint64_t value) const { record(value, 0); }

void Histogram::record(std::uint64_t value,
                       std::uint64_t exemplar_trace_id) const {
  auto& h = local_block().hists[id_];
  const std::uint64_t count = h.count.load(std::memory_order_relaxed);
  if (count == 0) {
    h.min.store(value, std::memory_order_relaxed);
    h.max.store(value, std::memory_order_relaxed);
  } else {
    if (value < h.min.load(std::memory_order_relaxed))
      h.min.store(value, std::memory_order_relaxed);
    if (value > h.max.load(std::memory_order_relaxed))
      h.max.store(value, std::memory_order_relaxed);
  }
  h.count.store(count + 1, std::memory_order_relaxed);
  bump(h.sum, value);
  const std::size_t bucket = histogram_bucket(value);
  bump(h.buckets[bucket], 1);
  if (exemplar_trace_id != 0) {
    const std::uint8_t cur = h.exemplar_cursor[bucket];
    auto& slot = h.exemplars[bucket][cur];
    slot.trace_id.store(exemplar_trace_id, std::memory_order_relaxed);
    slot.at_ns.store(now_ns(), std::memory_order_relaxed);
    h.exemplar_cursor[bucket] = static_cast<std::uint8_t>(
        (cur + 1) % HistogramSnapshot::kExemplarSlots);
  }
}

Snapshot snapshot() { return Registry::instance().snapshot(); }

}  // namespace pslocal::obs

#endif  // PSLOCAL_OBS_ENABLED

// snapshot_json exists in both OBS modes: the stats wire request kind
// still answers (with an empty snapshot) when instrumentation is
// compiled out.
namespace pslocal::obs {

namespace {

void append_hex64_quoted(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", v);
  out += buf;
}

// Metric names are identifier-like ([a-z0-9._]); escape the two JSON
// metacharacters defensively anyway.
void append_name(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string snapshot_json(const Snapshot& snap) {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    append_name(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    append_name(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    append_name(out, name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"min\":";
    out += std::to_string(h.min);
    out += ",\"max\":";
    out += std::to_string(h.max);
    out += ",\"p50\":";
    out += std::to_string(h.value_at_quantile(0.5));
    out += ",\"p99\":";
    out += std::to_string(h.value_at_quantile(0.99));
    out += ",\"buckets\":[";
    bool first_b = true;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_b) out += ',';
      first_b = false;
      out += '[';
      out += std::to_string(histogram_bucket_upper(b));
      out += ',';
      out += std::to_string(h.buckets[b]);
      out += ']';
    }
    out += "],\"exemplars\":[";
    bool first_e = true;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      bool any = false;
      for (const auto& e : h.exemplars[b]) any = any || e.trace_id != 0;
      if (!any) continue;
      if (!first_e) out += ',';
      first_e = false;
      out += '[';
      out += std::to_string(histogram_bucket_upper(b));
      for (const auto& e : h.exemplars[b]) {
        if (e.trace_id == 0) continue;
        out += ',';
        append_hex64_quoted(out, e.trace_id);
      }
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace pslocal::obs
