// Process-wide metric registries: named counters, gauges and
// log-bucketed histograms.
//
// Design (docs/observability.md has the full walkthrough):
//
//  * A handle (Counter / Gauge / Histogram) resolves its name to a small
//    id in a process-global registry; handles with the same name share
//    the id, so static handles in different translation units (or
//    template instantiations) aggregate into one metric.
//  * Every thread owns one cache-line-aligned block of slots, allocated
//    on first use and registered with the registry.  The hot path is a
//    relaxed load + relaxed store on the calling thread's own slot —
//    no atomic RMW, no lock, no shared cache line between writers.
//    (Relaxed atomics instead of plain words purely so the snapshot
//    reader is race-free; each slot has exactly one writer.)
//  * snapshot() merges the retired totals of exited threads with the
//    live blocks under the registry mutex.  All merge operations are
//    commutative (sum / min / max), so the merged values are
//    deterministic regardless of thread scheduling.
//  * Histograms are log2-bucketed: bucket b counts values whose
//    bit_width is b, i.e. bucket 0 holds {0}, bucket b>=1 holds
//    [2^(b-1), 2^b).  Count / sum / min / max ride along exactly.
//
// With PSLOCAL_OBS_ENABLED=0 (cmake -DPSLOCAL_OBS=OFF) every type in
// this header becomes an empty stub and all call sites compile to
// nothing; snapshot() returns an empty Snapshot.
#pragma once

#ifndef PSLOCAL_OBS_ENABLED
#define PSLOCAL_OBS_ENABLED 1
#endif

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace pslocal::obs {

inline constexpr bool kEnabled = PSLOCAL_OBS_ENABLED != 0;

/// log2 bucket of a value: 0 -> 0, v -> bit_width(v) otherwise.
[[nodiscard]] constexpr std::size_t histogram_bucket(std::uint64_t v) {
  std::size_t b = 0;
  while (v != 0) {
    v >>= 1;
    ++b;
  }
  return b;
}

/// Inclusive upper bound of bucket b (2^b - 1; bucket 0 holds only 0).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_upper(std::size_t b) {
  return b == 0 ? 0 : (b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1);
}

/// Merged view of one histogram (see bucket convention above).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;
  /// Tail exemplars: each bucket keeps the kExemplarSlots most recent
  /// non-zero trace_ids recorded into it, so a p99 bucket links
  /// directly to a scrapeable trace (docs/tracing.md).
  static constexpr std::size_t kExemplarSlots = 2;
  struct Exemplar {
    std::uint64_t trace_id = 0;  // 0 == empty slot
    std::uint64_t at_ns = 0;     // recording time, for recency merges
  };

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};
  /// Per bucket, newest first; empty slots have trace_id == 0.
  std::array<std::array<Exemplar, kExemplarSlots>, kBuckets> exemplars{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of the bucket holding the q-quantile (0 <= q <= 1) —
  /// e.g. value_at_quantile(0.99) is a p99 with log2 resolution, the
  /// precision the buckets can support.  0 when the histogram is empty.
  [[nodiscard]] std::uint64_t value_at_quantile(double q) const {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the quantile observation, 1-based ceiling (q = 0 -> first).
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets[b];
      if (seen >= rank && seen > 0) {
        const std::uint64_t upper = histogram_bucket_upper(b);
        return upper < max ? upper : max;
      }
    }
    return max;
  }
};

/// One deterministic, merged view of every registered metric.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Value of a counter, 0 when absent (absent == never incremented).
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  [[nodiscard]] std::int64_t gauge(const std::string& name) const {
    const auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }

  [[nodiscard]] HistogramSnapshot histogram(const std::string& name) const {
    const auto it = histograms.find(name);
    return it == histograms.end() ? HistogramSnapshot{} : it->second;
  }
};

/// Canonical single-line JSON for a Snapshot, served over the wire by
/// the `stats` request kind (docs/tracing.md).  Key order is
/// byte-deterministic: metric names sorted (std::map), fixed field
/// order inside each histogram.  Exemplar trace_ids are hex64 strings.
/// Available in both OBS modes (OFF serializes the empty snapshot).
[[nodiscard]] std::string snapshot_json(const Snapshot& snap);

#if PSLOCAL_OBS_ENABLED

/// Monotone event count, merged by sum.  Cheap enough for per-chunk and
/// per-ball-query call sites; hoist the handle out of inner loops.
class Counter {
 public:
  explicit Counter(const char* name);
  void add(std::uint64_t n = 1) const;
  [[nodiscard]] std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// Signed level, merged by summing per-thread contributions (pair the
/// add(+d) with an add(-d) on the SAME thread, like a resource count).
class Gauge {
 public:
  explicit Gauge(const char* name);
  void add(std::int64_t delta) const;
  [[nodiscard]] std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// Log2-bucketed value distribution (see header comment).
class Histogram {
 public:
  explicit Histogram(const char* name);
  void record(std::uint64_t value) const;
  /// Record a value and, when exemplar_trace_id != 0, remember it as a
  /// tail exemplar for the value's bucket.
  void record(std::uint64_t value, std::uint64_t exemplar_trace_id) const;
  [[nodiscard]] std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// Deterministic merged view of all metrics (commutative merges only).
[[nodiscard]] Snapshot snapshot();

#else  // PSLOCAL_OBS_ENABLED == 0: every handle is an empty no-op stub.

class Counter {
 public:
  explicit constexpr Counter(const char*) {}
  void add(std::uint64_t = 1) const {}
  [[nodiscard]] std::uint32_t id() const { return 0; }
};

class Gauge {
 public:
  explicit constexpr Gauge(const char*) {}
  void add(std::int64_t) const {}
  [[nodiscard]] std::uint32_t id() const { return 0; }
};

class Histogram {
 public:
  explicit constexpr Histogram(const char*) {}
  void record(std::uint64_t) const {}
  void record(std::uint64_t, std::uint64_t) const {}
  [[nodiscard]] std::uint32_t id() const { return 0; }
};

[[nodiscard]] inline Snapshot snapshot() { return {}; }

#endif  // PSLOCAL_OBS_ENABLED

}  // namespace pslocal::obs
