#include "obs/trace.hpp"

#if PSLOCAL_OBS_ENABLED

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pslocal::obs {

namespace {

struct Event {
  const char* name;
  std::uint64_t ts;  // absolute now_ns(); rebased on write
  char ph;           // 'B' or 'E'
};

// One thread's event buffer.  The mutex is effectively uncontended: the
// owner locks per event, the writer locks once at finish_tracing().
struct EventBuffer {
  std::mutex mu;
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

class TraceState {
 public:
  // Leaked singleton, same rationale as the metrics registry: buffers
  // retire from thread destructors whose order we don't control.
  static TraceState& instance() {
    static TraceState* t = new TraceState();
    return *t;
  }

  std::atomic<bool> active{false};

  EventBuffer& local_buffer() {
    thread_local BufferHolder holder;
    return *holder.buffer;
  }

  void start(const std::string& path) {
    std::lock_guard<std::mutex> lk(mu_);
    PSL_CHECK_MSG(!active.load(std::memory_order_relaxed),
                  "obs: start_tracing while a session is active");
    // Drop leftovers from spans that closed after the previous session.
    retired_.clear();
    for (EventBuffer* b : live_) {
      std::lock_guard<std::mutex> blk(b->mu);
      b->events.clear();
    }
    // Fail fast on an unwritable path: finding out only at
    // finish_tracing() would waste the whole traced run on a typo.
    {
      std::ofstream probe(path);
      PSL_CHECK_MSG(probe.good(), "obs: cannot open trace path " << path);
    }
    path_ = path;
    start_ns_ = now_ns();
    active.store(true, std::memory_order_relaxed);
  }

  std::string finish() {
    std::lock_guard<std::mutex> lk(mu_);
    if (path_.empty()) return {};
    active.store(false, std::memory_order_relaxed);
    std::vector<std::pair<std::uint32_t, std::vector<Event>>> all =
        std::move(retired_);
    retired_.clear();
    for (EventBuffer* b : live_) {
      std::lock_guard<std::mutex> blk(b->mu);
      if (!b->events.empty())
        all.emplace_back(b->tid, std::move(b->events));
      b->events.clear();
    }
    const std::string path = std::exchange(path_, std::string{});
    write_file(path, all);
    return path;
  }

  void attach(EventBuffer* buffer) {
    std::lock_guard<std::mutex> lk(mu_);
    buffer->tid = next_tid_++;
    live_.push_back(buffer);
  }

  void retire(EventBuffer* buffer) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!buffer->events.empty())
      retired_.emplace_back(buffer->tid, std::move(buffer->events));
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (*it == buffer) {
        live_.erase(it);
        break;
      }
    }
    delete buffer;
  }

 private:
  struct BufferHolder {
    EventBuffer* buffer;
    BufferHolder() : buffer(new EventBuffer()) {
      TraceState::instance().attach(buffer);
    }
    ~BufferHolder() { TraceState::instance().retire(buffer); }
  };

  // Span names are identifier-like literals, but escape defensively.
  static void append_escaped(std::string& out, const char* s) {
    for (; *s; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }

  void write_file(
      const std::string& path,
      std::vector<std::pair<std::uint32_t, std::vector<Event>>>& all) const {
    std::string out;
    out += "[\n";
    bool first = true;
    for (auto& [tid, events] : all) {
      // Balance: spans still open when the session ended get a
      // synthetic E at the thread's last seen timestamp; stray E
      // events (span object created in an earlier session) drop.
      std::size_t depth = 0;
      std::vector<const Event*> kept;
      kept.reserve(events.size());
      for (const Event& e : events) {
        if (e.ph == 'B') {
          ++depth;
          kept.push_back(&e);
        } else if (depth > 0) {
          --depth;
          kept.push_back(&e);
        }
      }
      std::uint64_t last_ts = start_ns_;
      for (const Event* e : kept) {
        emit(out, first, e->name, e->ph, e->ts, tid);
        last_ts = e->ts;
        first = false;
      }
      for (; depth > 0; --depth) {
        emit(out, first, "(unclosed)", 'E', last_ts, tid);
        first = false;
      }
    }
    out += "\n]\n";
    std::ofstream f(path);
    PSL_CHECK_MSG(f.good(), "obs: cannot open trace path " << path);
    f << out;
  }

  void emit(std::string& out, bool first, const char* name, char ph,
            std::uint64_t ts, std::uint32_t tid) const {
    if (!first) out += ",\n";
    out += "  {\"name\": \"";
    append_escaped(out, name);
    out += "\", \"cat\": \"pslocal\", \"ph\": \"";
    out += ph;
    out += "\", \"pid\": 0, \"tid\": ";
    out += std::to_string(tid);
    // Microseconds with nanosecond precision, rebased to session start.
    const std::uint64_t rel = ts >= start_ns_ ? ts - start_ns_ : 0;
    char buf[40];
    std::snprintf(buf, sizeof buf, ", \"ts\": %llu.%03u}",
                  static_cast<unsigned long long>(rel / 1000),
                  static_cast<unsigned>(rel % 1000));
    out += buf;
  }

  std::mutex mu_;
  std::string path_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t next_tid_ = 0;
  std::vector<EventBuffer*> live_;
  std::vector<std::pair<std::uint32_t, std::vector<Event>>> retired_;
};

inline void record(const char* name, char ph) {
  EventBuffer& buf = TraceState::instance().local_buffer();
  std::lock_guard<std::mutex> lk(buf.mu);
  buf.events.push_back(Event{name, now_ns(), ph});
}

}  // namespace

bool tracing_active() {
  return TraceState::instance().active.load(std::memory_order_relaxed);
}

void start_tracing(const std::string& path) {
  TraceState::instance().start(path);
}

std::string finish_tracing() { return TraceState::instance().finish(); }

ScopedSpan::ScopedSpan(const char* name)
    : name_(tracing_active() ? name : nullptr) {
  if (name_ != nullptr) record(name_, 'B');
}

ScopedSpan::~ScopedSpan() {
  // The E is recorded even if the session just ended, keeping the
  // buffer's B/E nesting intact; the writer drops events outside the
  // session window per thread as needed.
  if (name_ != nullptr) record(name_, 'E');
}

}  // namespace pslocal::obs

#endif  // PSLOCAL_OBS_ENABLED
