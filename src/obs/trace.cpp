#include "obs/trace.hpp"

#if PSLOCAL_OBS_ENABLED

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pslocal::obs {

namespace {

// SplitMix64 finalizer (same mixer as util/hash.hpp's mix64, restated
// here so obs stays dependency-free of the graph headers).
constexpr std::uint64_t trace_mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct Event {
  const char* name;
  std::uint64_t ts;  // absolute now_ns(); rebased on write
  char ph;           // 'B' or 'E'
  // Distributed-trace coordinates, meaningful on 'B' events only.
  std::uint64_t trace_id;
  std::uint64_t span_id;
  std::uint64_t parent_span_id;
};

// One thread's event buffer.  The mutex is effectively uncontended: the
// owner locks per event, the writer locks once at finish_tracing().
struct EventBuffer {
  std::mutex mu;
  std::vector<Event> events;
  std::uint32_t tid = 0;
  std::string label;  // Perfetto track name; sticky across sessions
};

// Events plus identity of one (possibly already exited) thread.
struct ThreadDump {
  std::uint32_t tid = 0;
  std::string label;
  std::vector<Event> events;
};

// The ambient context is plain thread-local data: reads/writes are
// single-threaded by construction, no synchronization needed.
thread_local TraceContext t_context;

class TraceState {
 public:
  // Leaked singleton, same rationale as the metrics registry: buffers
  // retire from thread destructors whose order we don't control.
  static TraceState& instance() {
    static TraceState* t = new TraceState();
    return *t;
  }

  std::atomic<bool> active{false};

  EventBuffer& local_buffer() {
    thread_local BufferHolder holder;
    return *holder.buffer;
  }

  void start(const std::string& path) {
    std::lock_guard<std::mutex> lk(mu_);
    PSL_CHECK_MSG(!active.load(std::memory_order_relaxed),
                  "obs: start_tracing while a session is active");
    // Drop leftovers from spans that closed after the previous session.
    retired_.clear();
    for (EventBuffer* b : live_) {
      std::lock_guard<std::mutex> blk(b->mu);
      b->events.clear();
    }
    // Fail fast on an unwritable path: finding out only at
    // finish_tracing() would waste the whole traced run on a typo.
    {
      std::ofstream probe(path);
      PSL_CHECK_MSG(probe.good(), "obs: cannot open trace path " << path);
    }
    path_ = path;
    start_ns_ = now_ns();
    active.store(true, std::memory_order_relaxed);
  }

  std::string finish() {
    std::lock_guard<std::mutex> lk(mu_);
    if (path_.empty()) return {};
    active.store(false, std::memory_order_relaxed);
    std::vector<ThreadDump> all = std::move(retired_);
    retired_.clear();
    for (EventBuffer* b : live_) {
      std::lock_guard<std::mutex> blk(b->mu);
      // Labelled-but-idle threads still get a thread_name metadata row
      // so every named track shows up in the merged view.
      if (!b->events.empty() || !b->label.empty())
        all.push_back(ThreadDump{b->tid, b->label, std::move(b->events)});
      b->events.clear();
    }
    const std::string path = std::exchange(path_, std::string{});
    write_file(path, all);
    return path;
  }

  void attach(EventBuffer* buffer) {
    std::lock_guard<std::mutex> lk(mu_);
    buffer->tid = next_tid_++;
    live_.push_back(buffer);
  }

  void retire(EventBuffer* buffer) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!buffer->events.empty())
      retired_.push_back(
          ThreadDump{buffer->tid, buffer->label, std::move(buffer->events)});
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (*it == buffer) {
        live_.erase(it);
        break;
      }
    }
    delete buffer;
  }

  void set_process(std::uint32_t pid, const std::string& name) {
    std::lock_guard<std::mutex> lk(mu_);
    pid_ = pid;
    process_name_ = name;
  }

 private:
  struct BufferHolder {
    EventBuffer* buffer;
    BufferHolder() : buffer(new EventBuffer()) {
      TraceState::instance().attach(buffer);
    }
    ~BufferHolder() { TraceState::instance().retire(buffer); }
  };

  // Span names are identifier-like literals, but escape defensively.
  static void append_escaped(std::string& out, const std::string& s) {
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }

  void write_file(const std::string& path,
                  std::vector<ThreadDump>& all) const {
    std::string out;
    out += "[\n";
    bool first = true;
    if (!process_name_.empty()) {
      emit_meta(out, first, "process_name", /*tid=*/0, process_name_);
      first = false;
    }
    for (ThreadDump& dump : all) {
      if (!dump.label.empty()) {
        emit_meta(out, first, "thread_name", dump.tid, dump.label);
        first = false;
      }
      // Balance: spans still open when the session ended get a
      // synthetic E at the thread's last seen timestamp; stray E
      // events (span object created in an earlier session) drop.
      std::size_t depth = 0;
      std::vector<const Event*> kept;
      kept.reserve(dump.events.size());
      for (const Event& e : dump.events) {
        if (e.ph == 'B') {
          ++depth;
          kept.push_back(&e);
        } else if (depth > 0) {
          --depth;
          kept.push_back(&e);
        }
      }
      std::uint64_t last_ts = start_ns_;
      for (const Event* e : kept) {
        emit(out, first, *e, dump.tid);
        last_ts = e->ts;
        first = false;
      }
      for (; depth > 0; --depth) {
        const Event closer{"(unclosed)", last_ts, 'E', 0, 0, 0};
        emit(out, first, closer, dump.tid);
        first = false;
      }
    }
    out += "\n]\n";
    std::ofstream f(path);
    PSL_CHECK_MSG(f.good(), "obs: cannot open trace path " << path);
    f << out;
  }

  static void append_hex64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    out += buf;
  }

  void emit(std::string& out, bool first, const Event& e,
            std::uint32_t tid) const {
    if (!first) out += ",\n";
    out += "  {\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"cat\": \"pslocal\", \"ph\": \"";
    out += e.ph;
    out += "\", \"pid\": ";
    out += std::to_string(pid_);
    out += ", \"tid\": ";
    out += std::to_string(tid);
    // Microseconds with nanosecond precision, rebased to session start.
    const std::uint64_t rel = e.ts >= start_ns_ ? e.ts - start_ns_ : 0;
    char buf[40];
    std::snprintf(buf, sizeof buf, ", \"ts\": %llu.%03u",
                  static_cast<unsigned long long>(rel / 1000),
                  static_cast<unsigned>(rel % 1000));
    out += buf;
    if (e.ph == 'B' && e.span_id != 0) {
      out += ", \"args\": {\"trace_id\": \"";
      append_hex64(out, e.trace_id);
      out += "\", \"span_id\": \"";
      append_hex64(out, e.span_id);
      out += "\", \"parent_span_id\": \"";
      append_hex64(out, e.parent_span_id);
      out += "\"}";
    }
    out += "}";
  }

  void emit_meta(std::string& out, bool first, const char* meta,
                 std::uint32_t tid, const std::string& value) const {
    if (!first) out += ",\n";
    out += "  {\"name\": \"";
    out += meta;
    out += "\", \"cat\": \"__metadata\", \"ph\": \"M\", \"pid\": ";
    out += std::to_string(pid_);
    out += ", \"tid\": ";
    out += std::to_string(tid);
    out += ", \"ts\": 0.000, \"args\": {\"name\": \"";
    append_escaped(out, value);
    out += "\"}}";
  }

  std::mutex mu_;
  std::string path_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t next_tid_ = 0;
  std::uint32_t pid_ = 0;
  std::string process_name_;
  std::vector<EventBuffer*> live_;
  std::vector<ThreadDump> retired_;
};

inline void record(const char* name, char ph, std::uint64_t trace_id = 0,
                   std::uint64_t span_id = 0,
                   std::uint64_t parent_span_id = 0) {
  EventBuffer& buf = TraceState::instance().local_buffer();
  std::lock_guard<std::mutex> lk(buf.mu);
  buf.events.push_back(
      Event{name, now_ns(), ph, trace_id, span_id, parent_span_id});
}

}  // namespace

bool tracing_active() {
  return TraceState::instance().active.load(std::memory_order_relaxed);
}

void start_tracing(const std::string& path) {
  TraceState::instance().start(path);
}

std::string finish_tracing() { return TraceState::instance().finish(); }

TraceContext current_trace_context() { return t_context; }

std::uint64_t new_trace_id() {
  // mix64 is a bijection on u64, so distinct counter values never
  // collide; skip the single preimage of 0 (0 means "no trace").
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t id;
  do {
    id = trace_mix64(counter.fetch_add(1, std::memory_order_relaxed) + 1);
  } while (id == 0);
  return id;
}

ScopedTraceContext::ScopedTraceContext(std::uint64_t trace_id,
                                       std::uint64_t span_id)
    : saved_(t_context) {
  t_context = TraceContext{trace_id, span_id};
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : saved_(t_context) {
  t_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_context = saved_; }

void set_thread_label(const std::string& label) {
  EventBuffer& buf = TraceState::instance().local_buffer();
  std::lock_guard<std::mutex> lk(buf.mu);
  buf.label = label;
}

void set_trace_process(std::uint32_t pid, const std::string& name) {
  TraceState::instance().set_process(pid, name);
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(tracing_active() ? name : nullptr) {
  if (name_ == nullptr) return;
  // Become the ambient parent: wire sends and nested spans inside this
  // scope point their parent_span_id here.
  saved_ = t_context;
  const std::uint64_t span_id = new_trace_id();
  record(name_, 'B', saved_.trace_id, span_id, saved_.span_id);
  t_context = TraceContext{saved_.trace_id, span_id};
}

ScopedSpan::~ScopedSpan() {
  // The E is recorded even if the session just ended, keeping the
  // buffer's B/E nesting intact; the writer drops events outside the
  // session window per thread as needed.
  if (name_ == nullptr) return;
  record(name_, 'E');
  t_context = saved_;
}

}  // namespace pslocal::obs

#endif  // PSLOCAL_OBS_ENABLED
