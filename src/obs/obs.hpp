// Umbrella header of the observability subsystem (src/obs/).
//
//   obs/metrics.hpp   named counters / gauges / log2 histograms,
//                     per-thread slots, deterministic merged snapshot()
//   obs/trace.hpp     RAII spans + Chrome trace-event JSON sessions
//
// Both halves compile to nothing under -DPSLOCAL_OBS=OFF
// (PSLOCAL_OBS_ENABLED=0); call sites never need their own #if.
// docs/observability.md documents the model, naming scheme and the
// measured overhead (bench_obs_overhead).
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
