// RAII scoped spans + Chrome trace-event export.
//
// A span is a named region of one thread's execution.  While a trace
// session is active (start_tracing), entering/leaving a span appends a
// B/E event pair — {name, timestamp, thread} — to the calling thread's
// private buffer; finish_tracing() merges all buffers and writes a
// Chrome trace-event JSON array that loads directly in ui.perfetto.dev
// or chrome://tracing.  Without a session, a span is one relaxed atomic
// load and nothing else, so instrumentation can stay on in production.
//
// Timestamps come from pslocal::now_ns() (util/timer.hpp) — the same
// clock the benches use — reported in microseconds relative to the
// session start, as the trace-event format specifies.
//
// Spans nest (thread-local stack discipline is automatic via RAII) and
// the writer balances any span still open at finish_tracing() with a
// synthetic E event, so the emitted file always has matched B/E pairs
// per thread.
//
// With PSLOCAL_OBS_ENABLED=0 everything here compiles to nothing.
#pragma once

#ifndef PSLOCAL_OBS_ENABLED
#define PSLOCAL_OBS_ENABLED 1
#endif

#include <string>

namespace pslocal::obs {

#if PSLOCAL_OBS_ENABLED

/// True while a trace session is recording (relaxed read, hot path).
[[nodiscard]] bool tracing_active();

/// Begin recording span events; `path` is where finish_tracing() will
/// write the Chrome trace JSON.  One session at a time.
void start_tracing(const std::string& path);

/// Stop recording, write the trace file, return its path ("" when no
/// session was active — safe to call unconditionally).
std::string finish_tracing();

/// `name` must outlive the session (string literals only).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;  // nullptr when the span started outside a session
};

#else  // PSLOCAL_OBS_ENABLED == 0

[[nodiscard]] inline bool tracing_active() { return false; }
inline void start_tracing(const std::string&) {}
inline std::string finish_tracing() { return {}; }

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // PSLOCAL_OBS_ENABLED

}  // namespace pslocal::obs

#define PSL_OBS_CAT2(a, b) a##b
#define PSL_OBS_CAT(a, b) PSL_OBS_CAT2(a, b)

/// Span covering the rest of the enclosing scope:  PSL_OBS_SPAN("x");
#if PSLOCAL_OBS_ENABLED
#define PSL_OBS_SPAN(name) \
  ::pslocal::obs::ScopedSpan PSL_OBS_CAT(psl_obs_span_, __LINE__) { name }
#else
#define PSL_OBS_SPAN(name) static_cast<void>(0)
#endif
