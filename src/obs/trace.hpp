// RAII scoped spans, distributed trace context + Chrome trace export.
//
// A span is a named region of one thread's execution.  While a trace
// session is active (start_tracing), entering/leaving a span appends a
// B/E event pair — {name, timestamp, thread} — to the calling thread's
// private buffer; finish_tracing() merges all buffers and writes a
// Chrome trace-event JSON array that loads directly in ui.perfetto.dev
// or chrome://tracing.  Without a session, a span is one relaxed atomic
// load and nothing else, so instrumentation can stay on in production.
//
// Distributed tracing (docs/tracing.md): every request carries a 64-bit
// trace_id plus the span_id of its parent across wire hops.  The pair
// is ambient, thread-local state:
//
//   - ScopedTraceContext adopts a context for the current scope (the
//     server adopts {frame.trace_id, frame.parent_span_id} before
//     dispatching, the client installs a fresh root before fan-out).
//   - ScopedSpan, while a session is active, allocates a span_id,
//     records the ambient trace_id and parent span_id into its B event
//     (exported as "args"), and becomes the ambient parent for spans
//     and wire sends nested inside it.
//   - current_trace_context() is what net::Client stamps into frames
//     and what stage histograms use as tail exemplars.
//
// new_trace_id() mints process-unique non-zero ids (SplitMix64 over a
// counter) and works with or without an active span session, so tail
// exemplars are live even when nothing is being traced.
//
// Track naming: set_thread_label() names the calling thread's track
// ("shard0.loop1", "client.0"), set_trace_process() names the process
// track and pid for multi-process merges; both surface as Chrome "M"
// (metadata) events.
//
// Timestamps come from pslocal::now_ns() (util/timer.hpp) — the same
// clock the benches use — reported in microseconds relative to the
// session start, as the trace-event format specifies.
//
// Spans nest (thread-local stack discipline is automatic via RAII) and
// the writer balances any span still open at finish_tracing() with a
// synthetic E event, so the emitted file always has matched B/E pairs
// per thread.
//
// With PSLOCAL_OBS_ENABLED=0 everything here compiles to nothing:
// trace ids are 0 (the wire field still exists, just zero) and spans,
// labels and sessions are no-ops.
#pragma once

#ifndef PSLOCAL_OBS_ENABLED
#define PSLOCAL_OBS_ENABLED 1
#endif

#include <cstdint>
#include <string>

namespace pslocal::obs {

/// Ambient per-thread trace coordinates.  trace_id identifies the whole
/// distributed request tree; span_id is the innermost open span (0 at a
/// tree root).  Plain data — meaningful even with OBS compiled out.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

#if PSLOCAL_OBS_ENABLED

/// True while a trace session is recording (relaxed read, hot path).
[[nodiscard]] bool tracing_active();

/// Begin recording span events; `path` is where finish_tracing() will
/// write the Chrome trace JSON.  One session at a time.
void start_tracing(const std::string& path);

/// Stop recording, write the trace file, return its path ("" when no
/// session was active — safe to call unconditionally).
std::string finish_tracing();

/// The calling thread's ambient trace context ({0,0} outside any
/// ScopedTraceContext / traced span).
[[nodiscard]] TraceContext current_trace_context();

/// Mint a process-unique non-zero 64-bit id (works without a session —
/// tail exemplars need ids even when no trace is being recorded).
[[nodiscard]] std::uint64_t new_trace_id();

/// Adopt {trace_id, span_id} as the calling thread's ambient context
/// for the current scope; restores the previous context on destruction.
/// Works with or without an active session (it is how trace ids flow
/// into wire frames and histogram exemplars).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::uint64_t trace_id,
                              std::uint64_t span_id = 0);
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// Name the calling thread's track in the exported trace ("shard0.loop1").
/// Sticky for the thread's lifetime; the last label set wins.
void set_thread_label(const std::string& label);

/// Name this process's track (and its pid) for multi-process trace
/// merges; pid 0 + empty name (the default) keeps the PR-2 output shape.
void set_trace_process(std::uint32_t pid, const std::string& name);

/// `name` must outlive the session (string literals only).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;  // nullptr when the span started outside a session
  TraceContext saved_;
};

#else  // PSLOCAL_OBS_ENABLED == 0

[[nodiscard]] inline bool tracing_active() { return false; }
inline void start_tracing(const std::string&) {}
inline std::string finish_tracing() { return {}; }
[[nodiscard]] inline TraceContext current_trace_context() { return {}; }
[[nodiscard]] inline std::uint64_t new_trace_id() { return 0; }
inline void set_thread_label(const std::string&) {}
inline void set_trace_process(std::uint32_t, const std::string&) {}

class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::uint64_t, std::uint64_t = 0) {}
  explicit ScopedTraceContext(const TraceContext&) {}
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // PSLOCAL_OBS_ENABLED

}  // namespace pslocal::obs

#define PSL_OBS_CAT2(a, b) a##b
#define PSL_OBS_CAT(a, b) PSL_OBS_CAT2(a, b)

/// Span covering the rest of the enclosing scope:  PSL_OBS_SPAN("x");
#if PSLOCAL_OBS_ENABLED
#define PSL_OBS_SPAN(name) \
  ::pslocal::obs::ScopedSpan PSL_OBS_CAT(psl_obs_span_, __LINE__) { name }
#else
#define PSL_OBS_SPAN(name) static_cast<void>(0)
#endif
